"""Round-trip and validation tests for IPv6/ICMPv6/TCP/UDP headers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addrs import address
from repro.addrs.address import MAX_ADDRESS
from repro.packet import icmpv6, ipv6, tcp, udp
from repro.packet.ipv6 import IPv6Header, PacketError

addresses = st.integers(min_value=0, max_value=MAX_ADDRESS)
ports = st.integers(min_value=0, max_value=0xFFFF)
payloads = st.binary(max_size=64)


class TestIPv6Header:
    def test_pack_length(self):
        header = IPv6Header(src=1, dst=2, payload_length=0, next_header=58)
        assert len(header.pack()) == ipv6.HEADER_LENGTH

    def test_round_trip(self):
        header = IPv6Header(
            src=address.parse("2001:db8::1"),
            dst=address.parse("2001:db8::2"),
            payload_length=20,
            next_header=6,
            hop_limit=3,
            traffic_class=0xA5,
            flow_label=0xBEEF,
        )
        parsed = IPv6Header.unpack(header.pack())
        assert parsed == header

    @given(
        addresses,
        addresses,
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=0xFFFFF),
    )
    def test_round_trip_property(self, src, dst, plen, nh, hlim, tclass, flow):
        header = IPv6Header(src, dst, plen, nh, hlim, tclass, flow)
        assert IPv6Header.unpack(header.pack()) == header

    def test_version_check(self):
        data = bytearray(IPv6Header(1, 2, 0, 58).pack())
        data[0] = 0x40  # version 4
        with pytest.raises(PacketError):
            IPv6Header.unpack(bytes(data))

    def test_short_rejected(self):
        with pytest.raises(PacketError):
            IPv6Header.unpack(b"\x60" + b"\x00" * 10)

    def test_field_ranges(self):
        with pytest.raises(PacketError):
            IPv6Header(1, 2, -1, 58)
        with pytest.raises(PacketError):
            IPv6Header(1, 2, 0, 58, hop_limit=256)
        with pytest.raises(PacketError):
            IPv6Header(1, 2, 0, 58, flow_label=1 << 20)

    def test_build_packet_fixes_length(self):
        header = IPv6Header(1, 2, 999, 58)
        packet = ipv6.build_packet(header, b"abc")
        parsed, payload = ipv6.split_packet(packet)
        assert parsed.payload_length == 3
        assert payload == b"abc"

    def test_copy_overrides(self):
        header = IPv6Header(1, 2, 0, 58, hop_limit=5)
        lowered = header.copy(hop_limit=1)
        assert lowered.hop_limit == 1
        assert lowered.src == header.src
        assert header.hop_limit == 5


class TestICMPv6:
    def test_echo_round_trip(self):
        src, dst = 1, 2
        message = icmpv6.echo_request(0x1234, 7, b"payload")
        packed = message.pack(src, dst)
        parsed = icmpv6.ICMPv6Message.unpack(packed)
        assert parsed.identifier == 0x1234
        assert parsed.sequence == 7
        assert parsed.body == b"payload"
        assert parsed.verify(src, dst)

    def test_corrupted_checksum_fails(self):
        src, dst = 1, 2
        packed = bytearray(icmpv6.echo_request(1, 1, b"x").pack(src, dst))
        packed[-1] ^= 0xFF
        assert not icmpv6.ICMPv6Message.unpack(bytes(packed)).verify(src, dst)

    def test_time_exceeded_quotes_packet(self):
        invoking = b"\x60" + b"\x00" * 60
        error = icmpv6.time_exceeded(invoking)
        assert error.is_error
        assert error.is_time_exceeded
        assert error.quotation == invoking

    def test_time_exceeded_truncates_to_mtu(self):
        invoking = b"\xaa" * 2000
        error = icmpv6.time_exceeded(invoking)
        assert len(error.quotation) == icmpv6.MAX_QUOTATION
        total = 40 + 8 + len(error.quotation)
        assert total <= icmpv6.MINIMUM_MTU

    def test_echo_not_error(self):
        assert not icmpv6.echo_reply(1, 1).is_error
        assert icmpv6.echo_reply(1, 1).is_echo_reply

    def test_unreachable_codes_label(self):
        error = icmpv6.destination_unreachable(
            icmpv6.UnreachableCode.PORT_UNREACHABLE, b""
        )
        assert icmpv6.classify_response(error) == "port unreachable"
        assert icmpv6.unreachable_code(error) is icmpv6.UnreachableCode.PORT_UNREACHABLE

    def test_classify_time_exceeded(self):
        assert icmpv6.classify_response(icmpv6.time_exceeded(b"")) == "time exceeded"

    def test_classify_unknown_code(self):
        message = icmpv6.ICMPv6Message(icmpv6.TYPE_DEST_UNREACH, 250)
        assert "code 250" in icmpv6.classify_response(message)
        assert icmpv6.unreachable_code(message) is None

    def test_unreachable_code_of_non_unreachable(self):
        assert icmpv6.unreachable_code(icmpv6.echo_reply(1, 1)) is None

    def test_short_segment_rejected(self):
        with pytest.raises(PacketError):
            icmpv6.ICMPv6Message.unpack(b"\x80\x00")

    @given(ports, ports, payloads)
    def test_echo_word_round_trip(self, ident, seq, payload):
        message = icmpv6.echo_request(ident, seq, payload)
        parsed = icmpv6.ICMPv6Message.unpack(message.pack(0, 0))
        assert (parsed.identifier, parsed.sequence) == (ident, seq)


class TestUDP:
    @given(addresses, addresses, ports, ports, payloads)
    def test_datagram_round_trip(self, src, dst, sport, dport, payload):
        segment = udp.build_datagram(src, dst, sport, dport, payload)
        header, parsed_payload = udp.split_datagram(segment)
        assert header.src_port == sport
        assert header.dst_port == dport
        assert header.length == len(segment)
        assert parsed_payload == payload
        assert udp.verify_datagram(src, dst, segment)

    def test_corruption_detected(self):
        segment = bytearray(udp.build_datagram(1, 2, 1000, 80, b"hello"))
        segment[-1] ^= 0x20
        assert not udp.verify_datagram(1, 2, bytes(segment))

    def test_port_range_checked(self):
        with pytest.raises(PacketError):
            udp.UDPHeader(70000, 80)

    def test_short_rejected(self):
        with pytest.raises(PacketError):
            udp.UDPHeader.unpack(b"\x00" * 7)


class TestTCP:
    @given(addresses, addresses, ports, ports, st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_segment_round_trip(self, src, dst, sport, dport, seq):
        header = tcp.TCPHeader(sport, dport, seq=seq, flags=tcp.FLAG_SYN)
        segment = tcp.build_segment(src, dst, header)
        parsed, payload = tcp.split_segment(segment)
        assert parsed.src_port == sport
        assert parsed.dst_port == dport
        assert parsed.seq == seq
        assert parsed.syn and not parsed.rst
        assert payload == b""
        assert tcp.verify_segment(src, dst, segment)

    def test_flags(self):
        header = tcp.TCPHeader(1, 2, flags=tcp.FLAG_SYN | tcp.FLAG_ACK)
        assert header.syn and header.ack_flag and not header.rst

    def test_corruption_detected(self):
        segment = bytearray(tcp.build_segment(1, 2, tcp.TCPHeader(1000, 80)))
        segment[4] ^= 0x01  # flip a sequence-number bit
        assert not tcp.verify_segment(1, 2, bytes(segment))

    def test_short_rejected(self):
        with pytest.raises(PacketError):
            tcp.TCPHeader.unpack(b"\x00" * 19)


class TestFullPacketComposition:
    def test_icmp_probe_in_ipv6(self):
        src = address.parse("2001:db8::100")
        dst = address.parse("2001:db8:1::1")
        echo = icmpv6.echo_request(42, 1, b"yarrp6")
        packet = ipv6.build_packet(
            IPv6Header(src, dst, 0, ipv6.PROTO_ICMPV6, hop_limit=4),
            echo.pack(src, dst),
        )
        header, payload = ipv6.split_packet(packet)
        assert header.hop_limit == 4
        message = icmpv6.ICMPv6Message.unpack(payload)
        assert message.identifier == 42
        assert message.verify(src, dst)

    def test_time_exceeded_quotation_recoverable(self):
        """End-to-end: a router quotes the probe; the prober recovers it."""
        src = address.parse("2001:db8::100")
        dst = address.parse("2001:db8:1::1")
        probe = ipv6.build_packet(
            IPv6Header(src, dst, 0, ipv6.PROTO_ICMPV6, hop_limit=1),
            icmpv6.echo_request(7, 9, b"state").pack(src, dst),
        )
        router = address.parse("2001:db8:ffff::1")
        error = icmpv6.time_exceeded(probe)
        reply = ipv6.build_packet(
            IPv6Header(router, src, 0, ipv6.PROTO_ICMPV6),
            error.pack(router, src),
        )
        outer_header, outer_payload = ipv6.split_packet(reply)
        outer = icmpv6.ICMPv6Message.unpack(outer_payload)
        inner_header, inner_payload = ipv6.split_packet(outer.quotation)
        inner = icmpv6.ICMPv6Message.unpack(inner_payload)
        assert inner_header.dst == dst
        assert inner.body == b"state"
