"""Unit tests for the benchmark artifact helper and its regression CLI.

``benchmarks.emit`` gained a ``--baseline`` compare mode: BENCH payloads
carry a ``tracked`` section of regression-watched numbers, and CI fails
the bench step when any of them drifts past its threshold in the losing
direction.  The threshold logic is pure arithmetic — these tests pin it
exactly, including the direction semantics and the per-entry override.
"""

import json
import os

import pytest

from benchmarks.emit import (
    DEFAULT_THRESHOLD,
    compare_tracked,
    emit_json,
    main,
    tracked_entry,
)


def payload(**tracked):
    return {"benchmark": "unit", "tracked": tracked}


class TestTrackedEntry:
    def test_defaults(self):
        entry = tracked_entry(2.5)
        assert entry == {"value": 2.5, "direction": "higher"}

    def test_threshold_recorded(self):
        entry = tracked_entry(1.0, direction="lower", threshold=0.1)
        assert entry == {"value": 1.0, "direction": "lower", "threshold": 0.1}

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            tracked_entry(1.0, direction="sideways")

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            tracked_entry(1.0, threshold=-0.5)


class TestCompareTracked:
    def test_empty_baseline_passes(self):
        assert compare_tracked(payload(), {"benchmark": "unit"}) == []

    def test_within_threshold_passes(self):
        base = payload(speedup=tracked_entry(2.0))
        # 10% drop, 25% default threshold.
        cur = payload(speedup=tracked_entry(1.8))
        assert compare_tracked(cur, base) == []

    def test_higher_is_better_regression(self):
        base = payload(speedup=tracked_entry(2.0))
        cur = payload(speedup=tracked_entry(1.4))  # -30%
        failures = compare_tracked(cur, base)
        assert len(failures) == 1
        assert "speedup" in failures[0]

    def test_improvement_never_fails(self):
        base = payload(
            speedup=tracked_entry(2.0),
            wall=tracked_entry(10.0, direction="lower"),
        )
        cur = payload(
            speedup=tracked_entry(9.0),
            wall=tracked_entry(0.5, direction="lower"),
        )
        assert compare_tracked(cur, base) == []

    def test_lower_is_better_regression(self):
        base = payload(wall=tracked_entry(10.0, direction="lower"))
        cur = payload(wall=tracked_entry(13.0, direction="lower"))  # +30%
        failures = compare_tracked(cur, base)
        assert len(failures) == 1
        assert "wall" in failures[0]

    def test_boundary_is_inclusive(self):
        """Exactly at the threshold edge is NOT a regression."""
        base = payload(speedup=tracked_entry(2.0))
        cur = payload(speedup=tracked_entry(2.0 * (1 - DEFAULT_THRESHOLD)))
        assert compare_tracked(cur, base) == []
        base = payload(wall=tracked_entry(10.0, direction="lower"))
        cur = payload(wall=tracked_entry(10.0 * (1 + DEFAULT_THRESHOLD), direction="lower"))
        assert compare_tracked(cur, base) == []

    def test_global_threshold_parameter(self):
        base = payload(speedup=tracked_entry(2.0))
        cur = payload(speedup=tracked_entry(1.9))  # -5%
        assert compare_tracked(cur, base, threshold=0.10) == []
        assert compare_tracked(cur, base, threshold=0.01) != []

    def test_per_entry_threshold_overrides_global(self):
        base = payload(speedup=tracked_entry(2.0, threshold=0.01))
        cur = payload(speedup=tracked_entry(1.9, threshold=0.01))  # -5%
        assert compare_tracked(cur, base, threshold=0.5) != []
        # The current entry's threshold wins over the baseline's.
        loose = payload(speedup=tracked_entry(1.9, threshold=0.2))
        assert compare_tracked(loose, base, threshold=0.5) == []

    def test_missing_tracked_name_fails(self):
        base = payload(speedup=tracked_entry(2.0))
        failures = compare_tracked(payload(), base)
        assert len(failures) == 1
        assert "missing" in failures[0]

    def test_new_tracked_name_in_current_ignored(self):
        base = payload()
        cur = payload(brand_new=tracked_entry(1.0))
        assert compare_tracked(cur, base) == []

    def test_multiple_regressions_all_reported(self):
        base = payload(
            a=tracked_entry(2.0),
            b=tracked_entry(5.0, direction="lower"),
            c=tracked_entry(3.0),
        )
        cur = payload(
            a=tracked_entry(0.1),
            b=tracked_entry(50.0, direction="lower"),
            c=tracked_entry(3.0),
        )
        failures = compare_tracked(cur, base)
        assert len(failures) == 2


class TestEmitJson:
    def test_writes_canonical_json(self, tmp_path, monkeypatch):
        import benchmarks.emit as emit_module

        monkeypatch.setattr(emit_module, "RESULTS_DIR", str(tmp_path))
        path = emit_json("unit", {"b": 2, "a": 1})
        assert os.path.basename(path) == "BENCH_unit.json"
        text = open(path).read()
        assert text.index('"a"') < text.index('"b"')  # sorted keys
        assert json.loads(text) == {"a": 1, "b": 2}


class TestMain:
    def write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", payload(x=tracked_entry(1.0)))
        cur = self.write(tmp_path, "cur.json", payload(x=tracked_entry(1.1)))
        assert main([cur, "--baseline", base]) == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", payload(x=tracked_entry(10.0)))
        cur = self.write(tmp_path, "cur.json", payload(x=tracked_entry(1.0)))
        assert main([cur, "--baseline", base]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path):
        base = self.write(tmp_path, "base.json", payload(x=tracked_entry(2.0)))
        cur = self.write(tmp_path, "cur.json", payload(x=tracked_entry(1.9)))
        assert main([cur, "--baseline", base, "--threshold", "0.2"]) == 0
        assert main([cur, "--baseline", base, "--threshold", "0.001"]) == 1

    def test_unreadable_input_exit_two(self, tmp_path, capsys):
        cur = self.write(tmp_path, "cur.json", payload())
        assert main([cur, "--baseline", str(tmp_path / "missing.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        assert main([cur, "--baseline", str(bad)]) == 2
        capsys.readouterr()

    def test_untracked_payloads_pass(self, tmp_path):
        base = self.write(tmp_path, "base.json", {"benchmark": "unit"})
        cur = self.write(tmp_path, "cur.json", {"benchmark": "unit"})
        assert main([cur, "--baseline", base]) == 0
