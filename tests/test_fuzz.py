"""Cross-cutting robustness: fuzzed inputs must never crash the stack.

A measurement tool lives on hostile input — mangled quotations, foreign
ICMPv6, truncated packets.  These property tests drive arbitrary bytes
through every parser-facing surface and assert graceful behaviour
(counted, skipped, or raising only the documented error types).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addrs import address
from repro.addrs.address import MAX_ADDRESS
from repro.netsim import Internet, InternetConfig, build_internet
from repro.packet import icmpv6, ipv6
from repro.packet.ipv6 import IPv6Header, PacketError
from repro.prober.encoding import DecodeError, decode_quotation
from repro.prober.output import OutputError, loads
from repro.prober.records import ResponseProcessor


@pytest.fixture(scope="module")
def net():
    return Internet(config=InternetConfig(n_edge=10, cpe_customers_per_isp=30, seed=2))


class TestParserFuzz:
    @given(st.binary(max_size=200))
    def test_ipv6_unpack_never_crashes(self, data):
        try:
            IPv6Header.unpack(data)
        except PacketError:
            pass

    @given(st.binary(max_size=200))
    def test_icmpv6_unpack_never_crashes(self, data):
        try:
            icmpv6.ICMPv6Message.unpack(data)
        except PacketError:
            pass

    @given(st.binary(max_size=300))
    def test_decode_quotation_never_crashes(self, data):
        try:
            decode_quotation(data)
        except DecodeError:
            pass

    @given(st.binary(max_size=300))
    def test_response_processor_never_crashes(self, data):
        processor = ResponseProcessor()
        processor.process(data, now=0, sent_so_far=1)
        # Whatever happened, it was accounted somewhere.
        assert processor.received == 1

    @given(st.text(max_size=400))
    def test_output_loads_never_crashes(self, text):
        try:
            loads(text)
        except OutputError:
            pass


class TestInternetFuzz:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=MAX_ADDRESS),
        st.integers(min_value=1, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.binary(max_size=60),
    )
    def test_arbitrary_payload_probes(self, dst, hop_limit, next_header, payload):
        """Any syntactically valid IPv6 packet from a vantage gets either
        a response or silence — never an exception."""
        internet = _NET
        vantage = internet.vantage("US-EDU-1")
        packet = ipv6.build_packet(
            IPv6Header(vantage.address, dst, 0, next_header, hop_limit=hop_limit),
            payload,
        )
        response = internet.probe(packet, now=0)
        if response is not None:
            assert isinstance(response.data, bytes)
            # Responses themselves parse as IPv6.
            IPv6Header.unpack(response.data)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=39))
    def test_short_packets_rejected_cleanly(self, data):
        internet = _NET
        with pytest.raises((PacketError, ValueError)):
            internet.probe(data, now=0)


# Hypothesis forbids function-scoped fixtures in @given tests; a module
# global keeps one simulator for all examples.
_NET = Internet(config=InternetConfig(n_edge=10, cpe_customers_per_isp=30, seed=2))
