"""Tests for aliased-prefix detection and hitlist filtering."""

import pytest

from repro.addrs import parse
from repro.addrs.prefix import Prefix
from repro.hitlist.dealias import (
    DealiasConfig,
    candidate_prefixes,
    detect_aliased,
    filter_hitlist,
)
from repro.netsim import Internet, InternetConfig, build_internet


@pytest.fixture(scope="module")
def built():
    # A healthy share of aliased subnets so detection has work to do.
    return build_internet(
        InternetConfig(
            n_edge=40,
            cpe_customers_per_isp=100,
            seed=41,
            aliased_subnet_fraction=0.1,
            response_loss=0.0,
        )
    )


def leaf_split(built):
    """Aliased/normal leaves, excluding ASes whose borders filter ICMPv6
    (an aliased prefix behind an admin firewall is unreachable — and
    correctly undetectable)."""
    from repro.packet.ipv6 import PROTO_ICMPV6

    aliased = []
    normal = []
    for subnet in built.truth.subnets.values():
        asys = built.truth.ases[subnet.gateway.asn]
        if PROTO_ICMPV6 in asys.policy.blocked_protocols:
            continue
        (aliased if subnet.aliased else normal).append(subnet.prefix)
    return aliased, normal


class TestGroundTruthPlanting:
    def test_some_subnets_aliased(self, built):
        aliased, normal = leaf_split(built)
        assert aliased
        assert normal

    def test_aliased_answers_random_iid(self, built):
        from repro.packet import icmpv6, ipv6
        from repro.packet.ipv6 import IPv6Header, PROTO_ICMPV6

        net = Internet(built)
        aliased, _ = leaf_split(built)
        vantage = net.vantage("US-EDU-1")
        target = aliased[0].base | 0xDEAD_BEEF_CAFE_F00D
        packet = ipv6.build_packet(
            IPv6Header(vantage.address, target, 0, PROTO_ICMPV6, hop_limit=64),
            icmpv6.echo_request(1, 1).pack(vantage.address, target),
        )
        response = net.probe(packet, 0)
        assert response is not None
        _, payload = ipv6.split_packet(response.data)
        assert icmpv6.ICMPv6Message.unpack(payload).is_echo_reply


class TestDetection:
    def test_finds_planted_aliased_prefixes(self, built):
        net = Internet(built)
        aliased, normal = leaf_split(built)
        candidates = aliased[:12] + normal[:30]
        found = detect_aliased(net, "US-EDU-1", candidates)
        assert found == set(aliased[:12])

    def test_normal_lans_not_flagged(self, built):
        net = Internet(built)
        _, normal = leaf_split(built)
        found = detect_aliased(net, "US-EDU-1", normal[:40])
        assert not found

    def test_requires_slash64(self, built):
        net = Internet(built)
        with pytest.raises(ValueError):
            detect_aliased(net, "US-EDU-1", [Prefix.parse("2001:db8::/48")])

    def test_threshold(self, built):
        """A lossy-but-real LAN with a lenient threshold is still safe:
        random IIDs in normal LANs answer ~never, far under threshold."""
        net = Internet(built)
        _, normal = leaf_split(built)
        found = detect_aliased(
            net, "US-EDU-1", normal[:20], DealiasConfig(threshold=0.5)
        )
        assert not found


class TestFiltering:
    def test_filter_hitlist(self):
        aliased = [Prefix.parse("2001:db8:bad::/64")]
        items = [
            parse("2001:db8:bad::1"),
            parse("2001:db8:bad::dead"),
            parse("2001:db8:900d::1"),
        ]
        kept, removed = filter_hitlist(items, aliased)
        assert removed == 2
        assert kept == [parse("2001:db8:900d::1")]

    def test_filter_prefix_items(self):
        aliased = [Prefix.parse("2001:db8:bad::/64")]
        items = [Prefix.parse("2001:db8:bad::/64"), Prefix.parse("2001:db8:900d::/64")]
        kept, removed = filter_hitlist(items, aliased)
        assert removed == 1
        assert kept == [Prefix.parse("2001:db8:900d::/64")]

    def test_candidate_prefixes(self):
        items = [
            parse("2001:db8::1"),
            parse("2001:db8::2"),
            parse("2001:db8:1::1"),
            Prefix.parse("2001:db8:2::/48"),  # shorter than /64: skipped
        ]
        candidates = candidate_prefixes(items)
        assert candidates == [
            Prefix.parse("2001:db8::/64"),
            Prefix.parse("2001:db8:1::/64"),
        ]
