"""Tests for Entropy/IP-style structure analysis and generation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addrs import parse
from repro.addrs.address import MAX_ADDRESS
from repro.hitlist.entropy import (
    EntropyModel,
    WIDTH,
    nybble_entropy,
    segment,
    structure_summary,
)


def lowbyte_block(count):
    base = parse("2001:db8:0:1::")
    return [base | index for index in range(1, count + 1)]


class TestNybbleEntropy:
    def test_empty(self):
        assert nybble_entropy([]) == [0.0] * WIDTH

    def test_constant_set(self):
        profile = nybble_entropy([parse("2001:db8::1")] * 5)
        assert all(value == 0.0 for value in profile)

    def test_uniform_last_nybble(self):
        addresses = [parse("2001:db8::") | nybble for nybble in range(16)]
        profile = nybble_entropy(addresses)
        assert profile[-1] == pytest.approx(4.0)
        assert all(value == 0.0 for value in profile[:-1])

    def test_bounds(self):
        rng = random.Random(1)
        addresses = [rng.getrandbits(128) for _ in range(200)]
        for value in nybble_entropy(addresses):
            assert 0.0 <= value <= 4.0

    @given(st.lists(st.integers(min_value=0, max_value=MAX_ADDRESS), min_size=1, max_size=40))
    def test_profile_width(self, addresses):
        assert len(nybble_entropy(addresses)) == WIDTH


class TestSegmentation:
    def test_lowbyte_block_structure(self):
        segments = segment(lowbyte_block(200))
        kinds = [seg.kind for seg in segments]
        # Leading constant prefix, structured tail.
        assert segments[0].kind == "constant"
        assert segments[0].start == 0
        # The low-byte counter region is non-constant.
        assert kinds[-1] in ("low", "high")
        # Segments tile the whole address exactly.
        assert segments[0].start == 0 and segments[-1].end == WIDTH
        for a, b in zip(segments, segments[1:]):
            assert a.end == b.start

    def test_random_iids_high_entropy_tail(self):
        rng = random.Random(2)
        base = parse("2001:db8::")
        addresses = [base | rng.getrandbits(64) for _ in range(300)]
        segments = segment(addresses)
        assert segments[-1].kind == "high"


class TestModel:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EntropyModel([])

    def test_preserves_constant_region(self):
        model = EntropyModel(lowbyte_block(64))
        rng = random.Random(3)
        prefix = parse("2001:db8:0:1::")
        for _ in range(50):
            candidate = model.sample(rng)
            assert candidate >> 64 == prefix >> 64

    def test_respects_observed_alphabet(self):
        # Last nybble only ever 1 or 5.
        base = parse("2001:db8::")
        addresses = [base | 1, base | 5] * 10
        model = EntropyModel(addresses)
        rng = random.Random(4)
        for _ in range(50):
            assert model.sample(rng) & 0xF in (1, 5)

    def test_generate_excludes_seeds(self):
        seeds = lowbyte_block(32)
        model = EntropyModel(seeds)
        generated = model.generate(40, seed=5, exclude=seeds)
        assert not set(generated) & set(seeds)
        assert generated == sorted(set(generated))

    def test_generate_deterministic(self):
        model = EntropyModel(lowbyte_block(64))
        assert model.generate(20, seed=9) == model.generate(20, seed=9)

    def test_generation_finds_holes(self):
        """Modeling addresses ::1..::64 with gaps generates plausible
        in-range candidates (the Entropy/IP value proposition)."""
        seeds = [addr for addr in lowbyte_block(96) if addr % 3]  # punch holes
        model = EntropyModel(seeds)
        generated = model.generate(30, seed=7, exclude=seeds)
        holes = set(lowbyte_block(96)) - set(seeds)
        assert set(generated) & holes


class TestSummary:
    def test_structured_vs_random(self):
        structured = structure_summary(lowbyte_block(128))
        rng = random.Random(8)
        scattered = structure_summary([rng.getrandbits(128) for _ in range(128)])
        assert structured["total_bits"] < scattered["total_bits"]
        assert structured["network_bits"] == 0.0
        assert scattered["network_bits"] > 30
