"""Tests for the zn prefix transformation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addrs import parse
from repro.addrs.address import MAX_ADDRESS
from repro.addrs.prefix import Prefix
from repro.hitlist.transform import as_prefix, expand_short_prefixes, zn

addresses = st.integers(min_value=0, max_value=MAX_ADDRESS)


class TestAsPrefix:
    def test_address_becomes_host_prefix(self):
        assert as_prefix(parse("2001:db8::1")) == Prefix.parse("2001:db8::1/128")

    def test_prefix_passthrough(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert as_prefix(prefix) is prefix


class TestZn:
    def test_addresses_aggregate_to_64(self):
        a = parse("2001:db8::1")
        b = parse("2001:db8::2")
        assert zn([a, b], 64) == [Prefix.parse("2001:db8::/64")]

    def test_short_prefix_extends(self):
        result = zn([Prefix.parse("2001:db8::/32")], 48)
        assert result == [Prefix.parse("2001:db8::/48")]

    def test_mixed_input(self):
        result = zn([Prefix.parse("2001:db8::/32"), parse("2001:dead:beef::1")], 48)
        assert Prefix.parse("2001:db8::/48") in result
        assert Prefix.parse("2001:dead:beef::/48") in result

    def test_sorted_output(self):
        result = zn([parse("ffff::1"), parse("::1"), parse("8000::1")], 64)
        assert result == sorted(result)

    def test_duplicate_collapse_z40_vs_z64(self):
        """A denser level yields at least as many prefixes (Table 3's
        probe-count growth with n)."""
        addrs = [
            parse("2001:db8:0:%x::%d" % (subnet, host))
            for subnet in range(4)
            for host in range(1, 4)
        ]
        assert len(zn(addrs, 40)) <= len(zn(addrs, 48)) <= len(zn(addrs, 64))
        assert len(zn(addrs, 64)) == 4
        assert len(zn(addrs, 40)) == 1

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            zn([], -1)
        with pytest.raises(ValueError):
            zn([], 129)

    @given(st.lists(addresses, max_size=50), st.sampled_from([40, 48, 56, 64]))
    def test_output_covers_input(self, addrs, level):
        result = zn(addrs, level)
        for addr in addrs:
            assert any(prefix.contains(addr) for prefix in result)
        for prefix in result:
            assert prefix.length == level

    @given(st.lists(addresses, max_size=50))
    def test_monotone_in_level(self, addrs):
        sizes = [len(zn(addrs, level)) for level in (40, 48, 56, 64)]
        assert sizes == sorted(sizes)


class TestExpand:
    def test_expands_short_prefix(self):
        result = expand_short_prefixes([Prefix.parse("2001:db8::/46")], 48)
        assert len(result) == 4
        assert all(prefix.length == 48 for prefix in result)

    def test_caps_expansion(self):
        result = expand_short_prefixes([Prefix.parse("2001:db8::/32")], 64, max_expansion=10)
        assert len(result) <= 10

    def test_truncates_long(self):
        result = expand_short_prefixes([parse("2001:db8::1")], 48)
        assert result == [Prefix.parse("2001:db8::/48")]
