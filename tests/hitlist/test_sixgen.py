"""Tests for 6Gen-style target generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addrs import parse
from repro.hitlist.sixgen import (
    NybbleRange,
    SixGenConfig,
    cluster_densities,
    generate,
)
import random


class TestConfig:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            SixGenConfig(mode="medium")

    def test_cluster_bits_validation(self):
        with pytest.raises(ValueError):
            SixGenConfig(cluster_bits=47)
        with pytest.raises(ValueError):
            SixGenConfig(cluster_bits=0)


class TestNybbleRange:
    def test_loose_uses_observed_values(self):
        seeds = [parse("2001:db8::1"), parse("2001:db8::4")]
        span = NybbleRange(seeds, "loose")
        # Last nybble observed values are exactly {1, 4}.
        assert span.choices[-1] == (1, 4)

    def test_tight_uses_contiguous_span(self):
        seeds = [parse("2001:db8::1"), parse("2001:db8::4")]
        span = NybbleRange(seeds, "tight")
        assert span.choices[-1] == (1, 2, 3, 4)

    def test_size(self):
        seeds = [parse("2001:db8::1"), parse("2001:db8::24")]
        span = NybbleRange(seeds, "loose")
        # Two positions with two choices each.
        assert span.size == 4

    def test_enumerate_exhaustive_when_small(self):
        seeds = [parse("2001:db8::1"), parse("2001:db8::2")]
        span = NybbleRange(seeds, "loose")
        values = span.enumerate(100, random.Random(0))
        assert parse("2001:db8::1") in values
        assert parse("2001:db8::2") in values
        assert len(values) == span.size

    def test_enumerate_samples_when_large(self):
        seeds = [parse("2001:db8::%x" % value) for value in range(16)]
        seeds += [parse("2001:db8::%x0" % value) for value in range(1, 16)]
        span = NybbleRange(seeds, "loose")
        values = span.enumerate(50, random.Random(0))
        assert len(values) <= 50


class TestGenerate:
    def test_includes_seeds(self):
        seeds = [parse("2001:db8::1"), parse("2001:db8::2"), parse("2a00::1")]
        output = generate(seeds, SixGenConfig(budget=100))
        assert set(seeds) <= set(output)

    def test_respects_budget(self):
        seeds = [parse("2001:db8::%x" % value) for value in range(1, 11)]
        output = generate(seeds, SixGenConfig(budget=20))
        assert len(output) <= 20

    def test_generates_near_clusters(self):
        """Generated addresses share the cluster prefix (address locality).

        Seeds varying in two nybble positions make the loose-mode cross
        product strictly larger than the seed set.
        """
        seeds = [parse("2001:db8:0:1::%x" % value) for value in range(1, 9)]
        seeds.append(parse("2001:db8:0:1::11"))
        seeds.append(parse("2a00:dead::1"))  # singleton cluster: no growth
        output = generate(seeds, SixGenConfig(budget=1000, min_cluster_size=4))
        cluster = parse("2001:db8::") >> 80
        generated = [addr for addr in output if addr not in set(seeds)]
        assert generated
        assert all(addr >> 80 == cluster for addr in generated)

    def test_single_position_variation_generates_nothing_new(self):
        """A cluster varying in one nybble position is already exhausted
        by its seeds — loose mode adds nothing."""
        seeds = [parse("2001:db8:0:1::%x" % value) for value in range(1, 9)]
        output = generate(seeds, SixGenConfig(budget=1000, min_cluster_size=4))
        assert set(output) == set(seeds)

    def test_loose_only_observed_nybbles(self):
        seeds = [
            parse("2001:db8::1:1"),
            parse("2001:db8::2:1"),
            parse("2001:db8::1:2"),
        ]
        output = generate(seeds, SixGenConfig(budget=100, mode="loose"))
        # Loose mode can produce the cross product 2001:db8::2:2 ...
        assert parse("2001:db8::2:2") in output
        # ...but never an unobserved nybble value like 3.
        assert parse("2001:db8::3:1") not in output

    def test_tight_fills_span(self):
        seeds = [parse("2001:db8::1"), parse("2001:db8::8")]
        output = generate(seeds, SixGenConfig(budget=100, mode="tight"))
        assert parse("2001:db8::5") in output

    def test_deterministic(self):
        seeds = [parse("2001:db8::%x" % value) for value in range(1, 30)]
        config = SixGenConfig(budget=500)
        assert generate(seeds, config) == generate(seeds, config)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 128) - 1), min_size=1, max_size=40))
    def test_sorted_unique_output(self, seeds):
        output = generate(seeds, SixGenConfig(budget=200))
        assert output == sorted(set(output))


def test_cluster_densities():
    seeds = [parse("2001:db8::1"), parse("2001:db8::2"), parse("2a00::1")]
    densities = cluster_densities(seeds, 48)
    assert densities[parse("2001:db8::") >> 80] == 2
    assert densities[parse("2a00::") >> 80] == 1
