"""Tests for kIP aggregation — privacy and coverage invariants."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addrs import parse
from repro.hitlist.kip import KIPParams, coverage, kip_aggregate, kn_transform


def observe(addr_text, intervals):
    addr = parse(addr_text)
    return [(addr, interval) for interval in intervals]


def dense_block(base_text, count, intervals=range(4)):
    """count /64s under base, each active in all given intervals."""
    base = parse(base_text)
    observations = []
    for index in range(count):
        addr = base + (index << 64) | 1
        for interval in intervals:
            observations.append((addr, interval))
    return observations


class TestParams:
    def test_intervals(self):
        assert KIPParams(window_days=1, interval_hours=1).intervals == 24
        assert KIPParams(window_days=14, interval_hours=1).intervals == 336

    def test_validation(self):
        with pytest.raises(ValueError):
            KIPParams(k=0)
        with pytest.raises(ValueError):
            KIPParams(percentile=0)


class TestAggregation:
    def params(self, k):
        return KIPParams(k=k, window_days=1, interval_hours=6)  # 4 intervals

    def test_empty(self):
        assert kip_aggregate([], self.params(2)) == []

    def test_below_k_releases_nothing(self):
        observations = dense_block("2001:db8::", 3)
        assert kip_aggregate(observations, self.params(32)) == []

    def test_every_aggregate_covers_k(self):
        observations = dense_block("2001:db8::", 64)
        params = self.params(8)
        aggregates = kip_aggregate(observations, params)
        assert aggregates
        active = {addr >> 64 for addr, _ in observations}
        for prefix in aggregates:
            inside = sum(1 for base in active if prefix.contains(base << 64))
            assert inside >= params.k

    def test_all_actives_covered(self):
        observations = dense_block("2001:db8::", 64) + dense_block("2001:dead::", 40)
        aggregates = kip_aggregate(observations, self.params(8))
        addresses = [addr for addr, _ in observations]
        assert coverage(aggregates, addresses) == 1.0

    def test_dense_space_gets_fine_aggregates(self):
        observations = dense_block("2001:db8::", 256)
        aggregates = kip_aggregate(observations, self.params(16))
        lengths = [prefix.length for prefix in aggregates]
        # 256 consecutive /64s with k=16 should refine well past /56.
        assert max(lengths) >= 56

    def test_sparse_stragglers_coarse(self):
        """A dense region plus a distant sparse one: the sparse actives
        appear only under a coarse catch-all (the university effect)."""
        observations = dense_block("2001:db8::", 64) + dense_block("2a00:1::", 4)
        aggregates = kip_aggregate(observations, self.params(16))
        sparse_base = parse("2a00:1::")
        covering = [prefix for prefix in aggregates if prefix.contains(sparse_base)]
        assert covering
        assert min(prefix.length for prefix in covering) < 32

    def test_higher_k_coarser(self):
        observations = dense_block("2001:db8::", 256)
        fine = kip_aggregate(observations, self.params(8))
        coarse = kip_aggregate(observations, self.params(64))
        assert len(fine) > len(coarse)

    def test_percentile_excludes_flash_activity(self):
        """/64s active in only one of four intervals don't count as
        simultaneously assigned at the median."""
        # 20 /64s each active only in interval 0.
        flash = dense_block("2001:db8::", 20, intervals=[0])
        assert kip_aggregate(flash, self.params(10)) == []
        # The same /64s active in all intervals do.
        steady = dense_block("2001:db8::", 20)
        assert kip_aggregate(steady, self.params(10))

    def test_kn_transform_wrapper(self):
        observations = dense_block("2001:db8::", 64)
        assert kn_transform(observations, 8, window_days=1, interval_hours=6)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=10, max_value=120))
    def test_invariants_random_worlds(self, k_log, count):
        # The seed IS the hypothesis-drawn case: deliberately test-local.
        rng = random.Random(count * 31 + k_log)  # repro-lint: disable=RNG101
        k = 1 << k_log
        observations = []
        base = parse("2001:db8::")
        for index in range(count):
            addr = base + (rng.randrange(0, 1 << 12) << 64)
            for interval in range(4):
                if rng.random() < 0.8:
                    observations.append((addr, interval))
        params = KIPParams(k=k, window_days=1, interval_hours=6)
        aggregates = kip_aggregate(observations, params)
        # Coverage: every active /64 is under some aggregate, or nothing
        # was released at all.
        if aggregates:
            assert coverage(aggregates, [a for a, _ in observations]) == 1.0
            # Privacy: every aggregate covers >= k active /64s at p50.
            per64 = {}
            for addr, interval in observations:
                per64.setdefault(addr >> 64, set()).add(interval)
            for prefix in aggregates:
                counts = [0, 0, 0, 0]
                for base64, active in per64.items():
                    if prefix.contains(base64 << 64):
                        for interval in active:
                            counts[interval] += 1
                assert np.percentile(counts, 50) >= k


class TestCoverage:
    def test_empty_addresses(self):
        assert coverage([], []) == 0.0

    def test_partial(self):
        from repro.addrs.prefix import Prefix

        aggregates = [Prefix.parse("2001:db8::/32")]
        addresses = [parse("2001:db8::1"), parse("2a00::1")]
        assert coverage(aggregates, addresses) == 0.5
