"""Tests for target synthesis and the three-step pipeline."""

import pytest

from repro.addrs import FIXED_IID, parse
from repro.addrs.prefix import Prefix
from repro.hitlist.pipeline import TargetSet, build_suite, combine, make_targets
from repro.hitlist.synthesis import (
    fixediid,
    known,
    lowbyte1,
    random_iid,
    synthesize,
    with_iid,
)

PREFIXES = [Prefix.parse("2001:db8::/64"), Prefix.parse("2001:db8:0:1::/64")]


class TestSynthesis:
    def test_lowbyte1(self):
        assert lowbyte1(PREFIXES) == [
            parse("2001:db8::1"),
            parse("2001:db8:0:1::1"),
        ]

    def test_fixediid(self):
        result = fixediid(PREFIXES)
        assert result[0] == parse("2001:db8::1234:5678:1234:5678")
        assert all(addr & ((1 << 64) - 1) == FIXED_IID for addr in result)

    def test_with_iid(self):
        result = with_iid(PREFIXES, 0xBEEF)
        assert result[0] == parse("2001:db8::beef")

    def test_random_iid_deterministic_and_inside(self):
        a = random_iid(PREFIXES, seed=1)
        b = random_iid(PREFIXES, seed=1)
        assert a == b
        for prefix, addr in zip(PREFIXES, a):
            assert prefix.contains(addr)

    def test_known_prefers_seed_address(self):
        seed_addr = parse("2001:db8::dead")
        result = known(PREFIXES, [seed_addr])
        assert result[0] == seed_addr
        assert result[1] == parse("2001:db8:0:1::1")  # fallback

    def test_duplicates_removed(self):
        twice = PREFIXES + PREFIXES
        assert len(lowbyte1(twice)) == len(PREFIXES)

    def test_dispatch(self):
        assert synthesize(PREFIXES, "lowbyte1") == lowbyte1(PREFIXES)
        assert synthesize(PREFIXES, "fixediid") == fixediid(PREFIXES)
        assert synthesize(PREFIXES, "random")
        assert synthesize(PREFIXES, "known", [parse("2001:db8::5")])

    def test_dispatch_unknown(self):
        with pytest.raises(ValueError):
            synthesize(PREFIXES, "nope")


class TestTargetSet:
    def test_sorted_unique(self):
        target_set = TargetSet("x", [3, 1, 3, 2])
        assert target_set.addresses == [1, 2, 3]
        assert len(target_set) == 3

    def test_contains(self):
        target_set = TargetSet("x", [10, 20])
        assert 10 in target_set
        assert 15 not in target_set

    def test_iteration(self):
        assert list(TargetSet("x", [2, 1])) == [1, 2]


class TestPipeline:
    def test_make_targets_naming(self):
        seeds = [parse("2001:db8::1"), parse("2001:db8::2")]
        target_set = make_targets("caida", seeds, level=64, method="fixediid")
        assert target_set.name == "caida-z64"
        assert target_set.transformation == "z64"
        assert target_set.synthesis == "fixediid"
        assert len(target_set) == 1  # both seeds share a /64

    def test_make_targets_prefix_seeds(self):
        seeds = [Prefix.parse("2001:db8::/32")]
        target_set = make_targets("cdn-k32", seeds, level=48, method="lowbyte1")
        assert target_set.addresses == [parse("2001:db8::1")]

    def test_combine(self):
        a = make_targets("a", [parse("2001:db8::1")], 64)
        b = make_targets("b", [parse("2001:dead::1")], 64)
        union = combine("combined", [a, b])
        assert len(union) == 2

    def test_build_suite_grid(self):
        seeds = {
            "caida": [Prefix.parse("2001:db8::/32")],
            "fiebig": [parse("2001:dead::1"), parse("2001:dead::2")],
        }
        suite = build_suite(seeds, levels=(48, 64))
        assert set(suite) == {"caida-z48", "caida-z64", "fiebig-z48", "fiebig-z64"}
        # z64 has at least as many targets as z48.
        assert len(suite["fiebig-z64"]) >= len(suite["fiebig-z48"])
