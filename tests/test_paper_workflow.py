"""The complete paper workflow, end to end, on a small world.

One integration test per pipeline stage, sharing a module-scoped world
and campaign: seeds → targets → campaign → traces → characterization →
subnet inference → alias resolution → persistence.  Asserts the
cross-module consistency properties no unit test can see.
"""

import io

import pytest

from repro.analysis import (
    AsnResolver,
    build_traces,
    discover_by_path_div,
    eui64_share,
    interface_graph,
    resolve_aliases,
    router_graph,
    score_against_truth,
    truth_clusters_for,
    validate_candidates,
)
from repro.hitlist import build_suite
from repro.netsim import Internet, InternetConfig, build_internet
from repro.prober import run_speedtrap, run_yarrp6
from repro.prober.output import loads, write_campaign
from repro.seeds import build_all_seeds


@pytest.fixture(scope="module")
def world():
    return build_internet(
        InternetConfig(n_edge=50, cpe_customers_per_isp=400, seed=71)
    )


@pytest.fixture(scope="module")
def suite(world):
    seeds = build_all_seeds(
        world, random_count=1500, sixgen_budget=4000, cdn_k32=2, cdn_k256=16
    )
    return build_suite(
        {name: seed_list.items for name, seed_list in seeds.items()}, levels=(64,)
    )


@pytest.fixture(scope="module")
def campaign(world, suite):
    internet = Internet(world)
    targets = sorted(
        set(suite["tum-z64"].addresses) | set(suite["cdn-k32-z64"].addresses)
    )
    return run_yarrp6(internet, "EU-NET", targets, pps=1000, max_ttl=16, fill=True)


class TestCampaignConsistency:
    def test_every_interface_is_a_real_router_interface(self, world, campaign):
        for interface in campaign.interfaces:
            assert interface in world.truth.router_addresses

    def test_every_record_targets_a_probed_address(self, campaign, suite):
        """Decoded targets match what we probed — except records whose
        quotation a middlebox rewrote, which the address checksum flags
        as target_modified (that's the detector's whole job)."""
        probed = set(suite["tum-z64"].addresses) | set(suite["cdn-k32-z64"].addresses)
        mismatches = 0
        for record in campaign.records:
            if record.target not in probed:
                assert record.target_modified, hex(record.target)
                mismatches += 1
        assert mismatches == sum(1 for r in campaign.records if r.target_modified)

    def test_trace_hops_subset_of_interfaces_plus_terminals(self, campaign):
        traces = build_traces(campaign.records)
        hop_union = set()
        for trace in traces.values():
            hop_union.update(hop for hop in trace.path if hop is not None)
        assert hop_union <= campaign.interfaces

    def test_eui64_comes_from_cpe(self, world, campaign):
        from repro.netsim.topology import RouterRole

        for interface in campaign.interfaces:
            router = world.truth.router_addresses[interface]
            if router.role is RouterRole.CPE:
                continue
            # Non-CPE routers never carry EUI-64 interfaces.
            from repro.addrs import IIDClass, classify_address

            assert classify_address(interface) is not IIDClass.EUI64


class TestSubnetStage:
    def test_candidates_within_probed_space(self, world, campaign):
        resolver = AsnResolver(world.truth.registry, world.truth.equivalent_asns)
        traces = build_traces(campaign.records)
        candidates = discover_by_path_div(traces, resolver)
        for prefix in candidates.candidate_prefixes:
            # Each candidate covers at least one probed target.
            assert any(prefix.contains(target) for target in traces)

    def test_ia_subnets_are_lans_or_router_links(self, world, campaign):
        """The IA hack pins customer LANs exactly; its known ambiguity is
        router point-to-point /64s, whose ::1 genuinely answers from
        inside the probed /64.  Nothing else may be flagged."""
        resolver = AsnResolver(world.truth.registry, world.truth.equivalent_asns)
        traces = build_traces(campaign.records)
        candidates = discover_by_path_div(traces, resolver)
        assert candidates.ia_subnets
        lan_hits = 0
        for prefix in candidates.ia_subnets:
            if prefix.base in world.truth.subnets:
                lan_hits += 1
            else:
                assert (prefix.base | 1) in world.truth.router_addresses, str(prefix)
        assert lan_hits > 0

    def test_validation_coheres(self, world, campaign):
        resolver = AsnResolver(world.truth.registry, world.truth.equivalent_asns)
        traces = build_traces(campaign.records)
        candidates = discover_by_path_div(traces, resolver)
        truth = []
        for asys in world.truth.ases.values():
            truth.extend(asys.plan.distribution)
            truth.extend(asys.plan.allocations)
        report = validate_candidates(candidates, truth, traces.keys())
        assert report.candidates == len(candidates.candidate_prefixes)
        assert report.exact_matches + report.more_specific <= report.candidates


class TestAliasStage:
    def test_resolution_then_collapse(self, world, campaign):
        internet = Internet(world)
        internet.reset_dynamics()
        machine = run_speedtrap(internet, "EU-NET", sorted(campaign.interfaces))
        clusters = resolve_aliases(machine.samples)
        truth = truth_clusters_for(campaign.interfaces, world.truth.router_addresses)
        accuracy = score_against_truth(clusters, truth)
        assert accuracy.precision > 0.95

        traces = build_traces(campaign.records)
        interfaces = interface_graph(traces)
        routers = router_graph(interfaces, clusters)
        assert routers.number_of_nodes() <= interfaces.number_of_nodes()
        # Interfaces survive the collapse as node attributes.
        collapsed = set()
        for _, data in routers.nodes(data=True):
            collapsed |= data["interfaces"]
        assert collapsed == set(interfaces.nodes)


class TestPersistenceStage:
    def test_round_trip_preserves_analysis(self, campaign):
        buffer = io.StringIO()
        write_campaign(buffer, campaign)
        loaded = loads(buffer.getvalue())
        assert loaded.interfaces == campaign.interfaces
        original_traces = build_traces(campaign.records)
        loaded_traces = build_traces(loaded.records)
        assert set(loaded_traces) == set(original_traces)
        for target, trace in original_traces.items():
            assert loaded_traces[target].hops == trace.hops
