"""Shared-world sharding: one built internet, byte-identical shards.

The parallel runner no longer rebuilds the world once per shard: the
parent builds it once, fork workers inherit it copy-on-write and rewind
its run-scoped state (:meth:`Internet.fresh_run_state`), and spawn
workers — whose process starts with an empty module — fall back to
rebuilding from the spec's config.  These tests pin the two contracts
that make that safe:

* **rewind**: a world that has run a campaign, then been rewound, is
  observably identical to a freshly built one;
* **identity**: ``run_parallel`` through real fork pools at shard counts
  1/2/4/8, and through the spawn fallback, serializes byte-for-byte to
  the single-process reference (``output.dumps``), merged metrics
  included.
"""

import multiprocessing

import pytest

from repro.netsim import Internet, InternetConfig, build_internet, decoupled_dynamics
from repro.obs import dump_to_json
from repro.prober import CampaignSpec, run_parallel, run_single
from repro.prober import parallel as parallel_module
from repro.prober.output import dumps
from repro.prober.parallel import _resolve_start_method, _shard_worker, _world_for

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

_WORLDS = {}


def shared_world_config(seed=11):
    """A tiny decoupled world config plus its leaf-host targets."""
    if seed not in _WORLDS:
        config = decoupled_dynamics(
            InternetConfig(
                seed=seed,
                n_edge=6,
                n_tier2=3,
                n_cpe_isps=1,
                cpe_customers_per_isp=12,
            )
        )
        built = build_internet(config)
        targets = tuple(
            subnet.prefix.base | 1 for subnet in built.truth.subnets.values()
        )
        _WORLDS[seed] = (config, targets)
    return _WORLDS[seed]


def make_spec(n_targets=30, pps=1100.0, metrics=False, seed=11):
    config, targets = shared_world_config(seed)
    return CampaignSpec(
        internet=config,
        vantage="US-EDU-1",
        targets=targets[:n_targets],
        pps=pps,
        metrics=metrics,
    )


class TestFreshRunState:
    def test_rewound_world_replays_identically(self):
        """Campaign -> rewind -> campaign produces the same bytes as two
        freshly built worlds would."""
        spec = make_spec()
        world = Internet.from_config(spec.internet)
        from repro.prober.campaign import run_campaign

        first = run_campaign(
            world, spec.vantage, list(spec.targets), pps=spec.pps
        )
        world.fresh_run_state()
        second = run_campaign(
            world, spec.vantage, list(spec.targets), pps=spec.pps
        )
        assert dumps(second) == dumps(first)
        assert second.duration_us == first.duration_us
        assert second.summary == first.summary

    def test_rewind_reseeds_the_rng(self):
        """reset_dynamics deliberately lets the loss RNG stream continue
        across trials; fresh_run_state must instead rewind it to the
        constructor seed, like a rebuild would."""
        config, _ = shared_world_config()
        world = Internet.from_config(config)
        fresh_draws = [world._rng.random() for _ in range(5)]
        world.reset_dynamics()
        continued = world._rng.random()
        assert continued != fresh_draws[0]  # the stream continued
        world.fresh_run_state()
        assert [world._rng.random() for _ in range(5)] == fresh_draws

    def test_world_for_reuses_one_build(self):
        config, _ = shared_world_config()
        first = _world_for(config)
        second = _world_for(config)
        assert first is second

    def test_world_for_rebuilds_on_config_change(self):
        config_a, _ = shared_world_config(11)
        config_b, _ = shared_world_config(12)
        world_a = _world_for(config_a)
        world_b = _world_for(config_b)
        assert world_a is not world_b
        assert world_b.config == config_b


class TestShardByteIdentity:
    """The acceptance criterion: shards {1, 2, 4, 8} through real fork
    pools serialize identically to the single-process reference."""

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_fork_pool_dumps_identical(self, shards):
        spec = make_spec()
        reference = run_single(spec)
        merged = run_parallel(
            spec, shards=shards, processes=min(shards, 2), start_method="fork"
        )
        assert dumps(merged) == dumps(reference)

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_fork_pool_metrics_merge_identical(self):
        """Merged telemetry is part of the byte-identity contract: the
        merged dump equals the merge-scoped view of the single run's
        dump (run-scoped engine counters and gauges are per-process by
        definition and excluded from merges)."""
        spec = make_spec(metrics=True)
        reference = run_single(spec)
        merged = run_parallel(spec, shards=4, processes=2, start_method="fork")
        assert dumps(merged) == dumps(reference)
        reference_view = {
            name: entry
            for name, entry in reference.metrics.items()
            if entry.get("scope") == "merge" and entry.get("kind") != "gauge"
        }
        assert dump_to_json(merged.metrics) == dump_to_json(reference_view)

    def test_serial_shards_share_one_world(self, monkeypatch):
        """processes=1 runs every shard in this process on ONE world:
        builds must not scale with the shard count."""
        builds = []
        original = Internet.from_config.__func__

        def counting(cls, config=None, profiler=None):
            builds.append(config)
            return original(cls, config)

        monkeypatch.setattr(
            Internet, "from_config", classmethod(counting)
        )
        monkeypatch.setattr(parallel_module, "_SHARED_WORLD", None)
        spec = make_spec(n_targets=10)
        reference = run_single(spec)
        merged = run_parallel(spec, shards=8, processes=1)
        assert dumps(merged) == dumps(reference)
        assert len(builds) == 1


class TestSpawnFallback:
    def test_spawn_worker_rebuilds_identically(self, monkeypatch):
        """A spawn worker starts with no inherited world (module globals
        are empty): simulate that by clearing the cache and running the
        worker entry point in-process — it must rebuild from the spec's
        config and produce the same bytes a fork worker does."""
        spec = make_spec(n_targets=12)
        inherited = _world_for(spec.internet)
        status, shard, with_inherited = _shard_worker((spec, 1, 3))
        assert status == "ok"
        assert parallel_module._SHARED_WORLD[1] is inherited

        monkeypatch.setattr(parallel_module, "_SHARED_WORLD", None)
        status, shard, rebuilt = _shard_worker((spec, 1, 3))
        assert status == "ok"
        assert parallel_module._SHARED_WORLD[1] is not inherited
        assert dumps(rebuilt) == dumps(with_inherited)

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    @pytest.mark.parametrize("shards", [2, 4])
    def test_spawn_pool_end_to_end(self, shards):
        """Real spawn pool runs at shards {2, 4}: slower (each worker
        reimports and rebuilds) but byte-identical — this is the
        explicit ``start_method="spawn"`` leg of the detsan CI gate."""
        spec = make_spec(n_targets=12, pps=1500.0)
        reference = run_single(spec)
        merged = run_parallel(
            spec, shards=shards, processes=2, start_method="spawn"
        )
        assert dumps(merged) == dumps(reference)

    def test_resolve_start_method(self):
        assert _resolve_start_method("spawn") == "spawn"
        assert _resolve_start_method("fork") == "fork"
        resolved = _resolve_start_method(None)
        assert resolved == ("fork" if HAS_FORK else "spawn")
