"""Tests for Yarrp6 stateless state encoding (Figure 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addrs import parse
from repro.addrs.address import MAX_ADDRESS
from repro.packet import icmpv6, ipv6, tcp, udp
from repro.packet.checksum import address_checksum, verify_transport_checksum
from repro.prober.encoding import (
    DEST_PORT,
    MAGIC,
    PAYLOAD_LENGTH,
    DecodeError,
    decode_quotation,
    encode_probe,
    rtt_from,
)

SRC = parse("2001:db8::100")
addresses = st.integers(min_value=1, max_value=MAX_ADDRESS)
ttls = st.integers(min_value=1, max_value=255)
times = st.integers(min_value=0, max_value=0xFFFFFFFF)
protocols = st.sampled_from(["icmp6", "udp", "tcp"])


class TestEncode:
    def test_icmp_probe_structure(self):
        packet = encode_probe(SRC, parse("2a00::1"), ttl=5, elapsed=123)
        header, payload = ipv6.split_packet(packet)
        assert header.hop_limit == 5
        assert header.next_header == ipv6.PROTO_ICMPV6
        message = icmpv6.ICMPv6Message.unpack(payload)
        assert message.msg_type == icmpv6.TYPE_ECHO_REQUEST
        assert message.identifier == address_checksum(parse("2a00::1"))
        assert message.sequence == DEST_PORT
        assert len(message.body) == PAYLOAD_LENGTH

    def test_udp_probe_structure(self):
        target = parse("2a00::1")
        packet = encode_probe(SRC, target, 3, 0, protocol="udp")
        header, payload = ipv6.split_packet(packet)
        assert header.next_header == ipv6.PROTO_UDP
        udp_header, body = udp.split_datagram(payload)
        assert udp_header.src_port == address_checksum(target)
        assert udp_header.dst_port == DEST_PORT
        assert len(body) == PAYLOAD_LENGTH

    def test_tcp_probe_structure(self):
        target = parse("2a00::1")
        packet = encode_probe(SRC, target, 3, 0, protocol="tcp")
        header, payload = ipv6.split_packet(packet)
        assert header.next_header == ipv6.PROTO_TCP
        tcp_header, body = tcp.split_segment(payload)
        assert tcp_header.syn
        assert tcp_header.src_port == address_checksum(target)
        assert len(body) == PAYLOAD_LENGTH

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            encode_probe(SRC, 1, 1, 0, protocol="sctp")

    @given(addresses, ttls, times, protocols)
    def test_checksum_valid(self, target, ttl, elapsed, protocol):
        """Despite the constant-checksum trick, every probe carries a
        *valid* transport checksum."""
        packet = encode_probe(SRC, target, ttl, elapsed, protocol=protocol)
        header, payload = ipv6.split_packet(packet)
        assert verify_transport_checksum(SRC, target, header.next_header, payload)

    @given(addresses, st.lists(st.tuples(ttls, times), min_size=2, max_size=6), protocols)
    def test_headers_constant_per_target(self, target, variations, protocol):
        """The Paris property: for one target, every probe's transport
        header — including the checksum — is byte-identical; only the
        payload and hop limit vary."""
        packets = [
            encode_probe(SRC, target, ttl, elapsed, protocol=protocol)
            for ttl, elapsed in variations
        ]
        transport_len = {"icmp6": 8, "udp": 8, "tcp": 20}[protocol]
        headers = {
            ipv6.split_packet(packet)[1][:transport_len] for packet in packets
        }
        assert len(headers) == 1


class TestDecode:
    @given(addresses, ttls, times, protocols, st.integers(min_value=0, max_value=255))
    def test_round_trip(self, target, ttl, elapsed, protocol, instance):
        packet = encode_probe(SRC, target, ttl, elapsed, instance, protocol)
        decoded = decode_quotation(packet)
        assert decoded.target == target
        assert decoded.ttl == ttl
        assert decoded.elapsed == elapsed
        assert decoded.instance == instance
        assert not decoded.target_modified

    def test_instance_mismatch(self):
        packet = encode_probe(SRC, 99, 1, 0, instance=7)
        with pytest.raises(DecodeError):
            decode_quotation(packet, instance=8)
        assert decode_quotation(packet, instance=7).instance == 7

    def test_bad_magic(self):
        packet = bytearray(encode_probe(SRC, 99, 1, 0))
        packet[48] ^= 0xFF  # first magic byte (40 IPv6 + 8 ICMP header)
        with pytest.raises(DecodeError):
            decode_quotation(bytes(packet))

    def test_truncated_quotation(self):
        packet = encode_probe(SRC, 99, 1, 0)
        with pytest.raises(DecodeError):
            decode_quotation(packet[:48])  # header + 8B only

    def test_truncation_boundary(self):
        """Quotations missing only the fudge bytes still decode."""
        packet = encode_probe(SRC, 99, 4, 1234)
        decoded = decode_quotation(packet[:-2])
        assert decoded.ttl == 4

    def test_rewritten_target_detected(self):
        """A middlebox rewriting the quoted destination trips the address
        checksum carried in the source port."""
        packet = bytearray(encode_probe(SRC, parse("2a00::1"), 1, 0))
        packet[38] ^= 0x55  # low bytes of the destination address
        decoded = decode_quotation(bytes(packet))
        assert decoded.target_modified

    def test_non_probe_quotation(self):
        stray = ipv6.build_packet(
            ipv6.IPv6Header(SRC, 1, 0, ipv6.PROTO_ICMPV6),
            icmpv6.echo_request(1, 1, b"not-yarrp\x00\x00\x00").pack(SRC, 1),
        )
        with pytest.raises(DecodeError):
            decode_quotation(stray)

    def test_garbage(self):
        with pytest.raises(DecodeError):
            decode_quotation(b"\x00" * 30)


class TestGoldenVectors:
    """Frozen (ttl, elapsed, instance, protocol) -> 12-byte payload vectors.

    The payload layout (magic | instance | ttl | elapsed | checksum fudge)
    is the wire contract every decoder — including a real yarrp parsing a
    quotation — depends on.  These literals pin it: if any of them change,
    the encoding changed, and old capture files stop decoding.  Vectors
    use SRC=2001:db8::100, target=2a00::1; the fudge bytes depend on both.
    """

    # (ttl, elapsed, instance, protocol, payload-hex)
    VECTORS = [
        (1, 0, 0, "icmp6", "795036000001000000006046"),
        (5, 123, 0, "icmp6", "7950360000050000007b5fc7"),
        (16, 1_000_000, 7, "icmp6", "795036000710000f424016e8"),
        (32, 2**31, 128, "icmp6", "795036008020800000006026"),
        (255, 0xFFFFFFFF, 255, "icmp6", "79503600ffffffffffff6047"),
        (64, 42, 1, "icmp6", "7950360001400000002a5edd"),
        (8, 999_999_999, 200, "icmp6", "79503600c8083b9ac9ff92a4"),
        (3, 77, 9, "udp", "7950360009030000004dd70c"),
        (12, 0xDEADBEEF, 255, "udp", "79503600ff0cdeadbeef43b2"),
        (9, 31337, 42, "tcp", "795036002a0900007a69ebfa"),
    ]
    # Transport payload offset: 40B IPv6 header + transport header.
    OFFSETS = {"icmp6": 48, "udp": 48, "tcp": 60}

    @pytest.mark.parametrize("ttl,elapsed,instance,protocol,expected", VECTORS)
    def test_payload_bytes_frozen(self, ttl, elapsed, instance, protocol, expected):
        packet = encode_probe(
            SRC, parse("2a00::1"), ttl, elapsed, instance, protocol
        )
        offset = self.OFFSETS[protocol]
        payload = packet[offset : offset + PAYLOAD_LENGTH]
        assert payload.hex() == expected

    @pytest.mark.parametrize("ttl,elapsed,instance,protocol,expected", VECTORS)
    def test_golden_payloads_decode(self, ttl, elapsed, instance, protocol, expected):
        """The frozen vectors round-trip through the decoder, so the
        literals themselves are self-consistent."""
        packet = encode_probe(
            SRC, parse("2a00::1"), ttl, elapsed, instance, protocol
        )
        decoded = decode_quotation(packet, instance=instance)
        assert (decoded.ttl, decoded.elapsed, decoded.instance) == (
            ttl,
            elapsed,
            instance,
        )

    def test_magic_prefix_constant(self):
        assert MAGIC == 0x79503600
        for *_rest, payload_hex in self.VECTORS:
            assert payload_hex.startswith("79503600")


class TestRtt:
    def test_simple(self):
        assert rtt_from(1000, 3500) == 2500

    def test_wraparound(self):
        assert rtt_from(0xFFFFFF00, 0x100000100) == 0x200
