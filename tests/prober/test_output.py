"""Tests for the .yrp6 campaign output format."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addrs.address import MAX_ADDRESS
from repro.packet import icmpv6
from repro.prober.campaign import CampaignResult
from repro.prober.output import (
    FORMAT_VERSION,
    OutputError,
    dumps,
    load_campaign,
    loads,
    read_records,
    save_campaign,
    write_records,
)
from repro.prober.records import ProbeRecord


def record(target=1, ttl=3, hop=2, icmp_type=icmpv6.TYPE_TIME_EXCEEDED, code=0, modified=False):
    return ProbeRecord(
        target=target,
        ttl=ttl,
        hop=hop,
        icmp_type=icmp_type,
        icmp_code=code,
        label="x",
        rtt_us=1500,
        received_at=42,
        target_modified=modified,
    )


def campaign(records):
    return CampaignResult(
        name="test",
        vantage="EU-NET",
        prober="yarrp6",
        pps=1000,
        targets=10,
        sent=160,
        records=records,
        interfaces={r.hop for r in records},
        curve=[],
        response_labels={},
        summary={},
        duration_us=999,
    )


class TestRoundTrip:
    def test_simple(self):
        text = dumps(campaign([record(), record(target=5, ttl=7, hop=9)]))
        loaded = loads(text)
        assert len(loaded.records) == 2
        assert loaded.metadata["vantage"] == "EU-NET"
        assert loaded.metadata["pps"] == "1000"
        assert loaded.skipped_rows == 0
        first = loaded.records[0]
        assert (first.target, first.ttl, first.hop) == (1, 3, 2)
        assert first.rtt_us == 1500
        assert first.received_at == 42

    def test_modified_flag(self):
        loaded = loads(dumps(campaign([record(modified=True), record()])))
        assert loaded.records[0].target_modified
        assert not loaded.records[1].target_modified

    def test_labels_reconstructed(self):
        records = [
            record(icmp_type=icmpv6.TYPE_TIME_EXCEEDED, code=0),
            record(icmp_type=icmpv6.TYPE_DEST_UNREACH, code=4),
            record(icmp_type=icmpv6.TYPE_ECHO_REPLY, code=0),
        ]
        loaded = loads(dumps(campaign(records)))
        assert loaded.records[0].label == "time exceeded"
        assert loaded.records[1].label == "port unreachable"
        assert loaded.records[2].label == "echo reply"

    def test_interfaces_property(self):
        records = [
            record(hop=10),
            record(hop=11, icmp_type=icmpv6.TYPE_ECHO_REPLY),
        ]
        loaded = loads(dumps(campaign(records)))
        assert loaded.interfaces == {10}

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=MAX_ADDRESS),
                st.integers(min_value=1, max_value=255),
                st.integers(min_value=0, max_value=MAX_ADDRESS),
                st.booleans(),
            ),
            max_size=20,
        )
    )
    def test_property_round_trip(self, rows):
        records = [
            record(target=target, ttl=ttl, hop=hop, modified=modified)
            for target, ttl, hop, modified in rows
        ]
        loaded = loads(dumps(campaign(records)))
        assert len(loaded.records) == len(records)
        for original, parsed in zip(records, loaded.records):
            assert parsed.target == original.target
            assert parsed.ttl == original.ttl
            assert parsed.hop == original.hop
            assert parsed.target_modified == original.target_modified


class TestRobustness:
    def test_rejects_non_yrp6(self):
        with pytest.raises(OutputError):
            loads("hello world\n")

    def test_skips_malformed_rows(self):
        text = dumps(campaign([record()]))
        text += "not\ta\tvalid\trow\n"
        text += "::1\tnot_an_int\t3\t0\t1\t::2\t5\t-\n"
        loaded = loads(text)
        assert len(loaded.records) == 1
        assert loaded.skipped_rows == 2

    def test_blank_lines_skipped(self):
        text = dumps(campaign([record()])) + "\n\n"
        assert len(loads(text).records) == 1

    def test_multiline_metadata_rejected(self):
        buffer = io.StringIO()
        with pytest.raises(OutputError):
            write_records(buffer, [], metadata={"bad": "a\nb"})

    def test_multiline_metadata_key_rejected(self):
        # A newline in the *key* would also break the line-oriented header
        # (regression: only values used to be validated).
        buffer = io.StringIO()
        with pytest.raises(OutputError):
            write_records(buffer, [], metadata={"a\nb": "fine"})
        assert buffer.getvalue().count("\n") <= 1  # nothing partial written

    def test_unknown_metadata_preserved(self):
        text = "# %s\n# custom-key: custom-value\n" % FORMAT_VERSION
        loaded = loads(text)
        assert loaded.metadata["custom-key"] == "custom-value"


class TestFileIO:
    def test_save_load(self, tmp_path):
        path = str(tmp_path / "campaign.yrp6")
        written = save_campaign(path, campaign([record(), record(target=2)]))
        assert written == 2
        loaded = load_campaign(path)
        assert len(loaded.records) == 2
        assert loaded.metadata["name"] == "test"
