"""Tests for MDA-style ECMP enumeration and the flow-id encoding."""

import pytest

from repro.netsim import Internet, InternetConfig, build_internet
from repro.netsim.ecmp import flow_variant
from repro.packet import ipv6
from repro.packet.checksum import verify_transport_checksum
from repro.prober.encoding import encode_probe
from repro.prober.mda import MDAConfig, MDAResult, run_mda


@pytest.fixture(scope="module")
def built():
    return build_internet(InternetConfig(n_edge=40, cpe_customers_per_isp=200, seed=17))


class TestFlowIdEncoding:
    def test_flow_zero_is_default(self):
        assert encode_probe(1, 2, 3, 4) == encode_probe(1, 2, 3, 4, flow_id=0)

    def test_flows_change_checksum_only(self):
        base = encode_probe(1, 2, 3, 4, flow_id=0)
        other = encode_probe(1, 2, 3, 4, flow_id=5)
        # IPv6 header identical.
        assert base[:40] == other[:40]
        # ICMPv6 type/code/id/seq identical; checksum and fudge differ.
        assert base[40:42] == other[40:42]
        assert base[44:48] == other[44:48]
        assert base[42:44] != other[42:44]

    def test_every_flow_checksum_valid(self):
        for flow_id in range(0, 40, 7):
            packet = encode_probe(1, 2, 3, 4, flow_id=flow_id)
            header, payload = ipv6.split_packet(packet)
            assert verify_transport_checksum(1, 2, header.next_header, payload)

    def test_flow_constant_within_target(self):
        """For one (target, flow) the checksum stays constant across TTL
        and timestamp — each flow is itself Paris-stable."""
        a = encode_probe(1, 2, ttl=3, elapsed=100, flow_id=9)
        b = encode_probe(1, 2, ttl=14, elapsed=999_999, flow_id=9)
        assert a[42:44] == b[42:44]

    def test_flows_reach_different_variants(self, built):
        """Across a handful of flow ids, more than one ECMP variant is
        exercised for some destination."""
        net = Internet(built)
        dst = next(iter(built.truth.subnets.values())).prefix.base | 1
        variants = set()
        for flow_id in range(8):
            packet = encode_probe(net.vantage("US-EDU-1").address, dst, 5, 0, flow_id=flow_id * 7)
            header, payload = ipv6.split_packet(packet)
            variants.add(flow_variant(header, payload))
        assert len(variants) > 1


class TestMDA:
    def test_requires_targets(self, built):
        net = Internet(built)
        with pytest.raises(ValueError):
            run_mda(net, "US-EDU-1", [])

    def test_enumerates_parallel_interfaces(self, built):
        """Somewhere along multi-homed paths, different flows expose
        different interfaces at the same hop."""
        net = Internet(built)
        targets = []
        for subnet in built.truth.subnets.values():
            targets.append(subnet.prefix.base | 0x1234)
            if len(targets) >= 40:
                break
        result = run_mda(net, "US-EDU-1", targets, MDAConfig(flows=6, max_ttl=12))
        divergent = result.divergent_hops()
        assert divergent, "no load-balanced hops enumerated"
        # Every divergent hop set is ground-truth plausible: all its
        # members are interfaces of routers on some variant's path.
        vantage = net.vantage("US-EDU-1")
        for (target, ttl), hops in divergent.items():
            allowed = set()
            for variant in range(4):
                path = net.path_for(vantage, target, variant)
                if ttl <= path.length:
                    allowed.add(path.hops[ttl - 1][1])
            assert hops <= allowed, (target, ttl)

    def test_single_flow_no_divergence(self, built):
        net = Internet(built)
        targets = [next(iter(built.truth.subnets.values())).prefix.base | 1]
        result = run_mda(net, "US-EDU-1", targets, MDAConfig(flows=1, max_ttl=10))
        assert not result.divergent_hops()

    def test_width(self, built):
        net = Internet(built)
        targets = [next(iter(built.truth.subnets.values())).prefix.base | 1]
        result = run_mda(net, "US-EDU-1", targets, MDAConfig(flows=6, max_ttl=12))
        assert result.width(targets[0]) >= 1
        assert result.width(0xDEAD) == 0
