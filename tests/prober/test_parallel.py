"""Tests for the parallel campaign runner (shard execution + merge).

The determinism contract under test: for a decoupled-dynamics world and
a pure permutation walk (no fill, no neighborhood skipping),

    run_parallel(spec, shards=N) == run_single(spec)

field by field, for any N.  The merge is a pure function of the shard
results, so most tests run the shards serially (``processes=1``) for
speed; one test drives a real worker pool end to end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import InternetConfig, build_internet, decoupled_dynamics
from repro.prober import (
    CampaignSpec,
    ShardFailure,
    Yarrp6Config,
    run_parallel,
    run_single,
)
from repro.prober import parallel as parallel_module


_WORLDS = {}


def small_world(seed):
    """A tiny decoupled world plus its leaf-host targets, cached per seed."""
    if seed not in _WORLDS:
        config = decoupled_dynamics(
            InternetConfig(
                seed=seed,
                n_edge=6,
                n_tier2=3,
                n_cpe_isps=1,
                cpe_customers_per_isp=12,
            )
        )
        built = build_internet(config)
        targets = tuple(
            subnet.prefix.base | 1 for subnet in built.truth.subnets.values()
        )
        _WORLDS[seed] = (config, targets)
    return _WORLDS[seed]


def record_key(record):
    return (
        record.target,
        record.ttl,
        record.hop,
        record.icmp_type,
        record.icmp_code,
        record.label,
        record.rtt_us,
        record.received_at,
        record.target_modified,
    )


def assert_identical(merged, reference):
    """Field-by-field CampaignResult equality (records projected to value
    tuples: ProbeRecord has __slots__ and no __eq__)."""
    assert merged.sent == reference.sent
    assert [record_key(r) for r in merged.records] == [
        record_key(r) for r in reference.records
    ]
    assert merged.interfaces == reference.interfaces
    assert merged.curve == reference.curve
    assert merged.summary == reference.summary
    assert merged.response_labels == reference.response_labels
    assert merged.duration_us == reference.duration_us
    assert merged.vantage == reference.vantage
    assert merged.prober == reference.prober
    assert merged.targets == reference.targets


class TestMergeEqualsSingleProcess:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_acceptance_n_1_2_4(self, shards):
        """The acceptance criterion: N in {1, 2, 4} bit-identical."""
        config, targets = small_world(7)
        spec = CampaignSpec(
            internet=config, vantage="US-EDU-1", targets=targets[:30], pps=900.0
        )
        reference = run_single(spec)
        merged = run_parallel(spec, shards=shards, processes=1)
        assert_identical(merged, reference)

    def test_real_worker_pool(self):
        """Same equality through an actual multiprocessing pool, with
        shard results arriving in arbitrary order."""
        config, targets = small_world(7)
        spec = CampaignSpec(
            internet=config, vantage="US-EDU-1", targets=targets[:24], pps=1100.0
        )
        reference = run_single(spec)
        merged = run_parallel(spec, shards=4, processes=2)
        assert_identical(merged, reference)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.sampled_from([7, 21]),
        n_targets=st.integers(min_value=1, max_value=30),
        ttl_range=st.tuples(
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=5, max_value=12),
        ),
        key=st.integers(min_value=0, max_value=2**64),
        shards=st.integers(min_value=1, max_value=8),
        pps=st.sampled_from([250.0, 1000.0, 3333.0]),
    )
    def test_merge_property(self, seed, n_targets, ttl_range, key, shards, pps):
        """Satellite 1: for random (n, ttl range, key, N <= 8) the merged
        parallel campaign equals the single-process one field by field."""
        config, targets = small_world(seed)
        min_ttl, max_ttl = ttl_range
        spec = CampaignSpec(
            internet=config,
            vantage="US-EDU-1",
            targets=targets[:n_targets],
            pps=pps,
            config=Yarrp6Config(min_ttl=min_ttl, max_ttl=max_ttl, key=key),
        )
        reference = run_single(spec)
        merged = run_parallel(spec, shards=shards, processes=1)
        assert_identical(merged, reference)

    def test_merged_name_and_metadata(self):
        config, targets = small_world(7)
        spec = CampaignSpec(
            internet=config, vantage="US-EDU-1", targets=targets[:10]
        )
        merged = run_parallel(spec, shards=2, processes=1)
        assert merged.name == "US-EDU-1/yarrp6"
        assert merged.targets == 10
        assert merged.pps == spec.pps


class TestValidation:
    def bomb(self, *args, **kwargs):
        raise AssertionError("pool must not be created for an invalid spec")

    def test_errors_raise_before_any_fork(self, monkeypatch):
        """Satellite 4: a bad shard count or config fails with one clean
        ValueError in the parent, before any worker pool exists."""
        monkeypatch.setattr(parallel_module, "_make_pool", self.bomb)
        config, targets = small_world(7)
        spec = CampaignSpec(
            internet=config, vantage="US-EDU-1", targets=targets[:5]
        )
        with pytest.raises(ValueError):
            run_parallel(spec, shards=0, processes=4)
        with pytest.raises(ValueError):
            run_parallel(spec, shards=-2, processes=4)
        bad_ttl = CampaignSpec(
            internet=config,
            vantage="US-EDU-1",
            targets=targets[:5],
            config=Yarrp6Config(min_ttl=9, max_ttl=3),
        )
        with pytest.raises(ValueError):
            run_parallel(bad_ttl, shards=4, processes=4)
        empty = CampaignSpec(internet=config, vantage="US-EDU-1", targets=())
        with pytest.raises(ValueError):
            run_parallel(empty, shards=2, processes=4)

    def test_presharded_config_rejected(self, monkeypatch):
        """run_parallel owns shard assignment; a spec that already carries
        a shard identity is a caller bug, not something to silently nest."""
        monkeypatch.setattr(parallel_module, "_make_pool", self.bomb)
        config, targets = small_world(7)
        spec = CampaignSpec(
            internet=config,
            vantage="US-EDU-1",
            targets=targets[:5],
            config=Yarrp6Config(shard=1, shards=3),
        )
        with pytest.raises(ValueError):
            run_parallel(spec, shards=2, processes=4)

    def test_worker_exception_surfaces_cleanly(self):
        """A failure inside a worker becomes one ShardFailure carrying the
        worker traceback — not a hang, not a pickled half-error."""
        config, targets = small_world(7)
        spec = CampaignSpec(
            internet=config, vantage="NO-SUCH-VANTAGE", targets=targets[:5]
        )
        with pytest.raises(ShardFailure) as excinfo:
            run_parallel(spec, shards=2, processes=2)
        message = str(excinfo.value)
        assert "worker failed" in message
        assert "NO-SUCH-VANTAGE" in message

    def test_merge_requires_results(self):
        with pytest.raises(ValueError):
            parallel_module.merge_results([], pps=1000.0)
