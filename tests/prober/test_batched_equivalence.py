"""The columnar fast path is bit-identical to the scalar reference.

Every layer of the batched campaign loop claims exact equivalence with
the per-event implementation it replaces:

* ``KeyedPermutation.images`` (numpy-vectorized Feistel) vs
  ``images_scalar`` (the pure-Python reference);
* ``ProbeTemplate.encode_into`` (preallocated buffer, incremental field
  patching) vs ``encode_probe`` (full per-probe assembly);
* ``Yarrp6.next_probes`` (batched pull) vs ``next_probe`` (one at a
  time);
* ``run_campaign(batch=N)`` (block emission, analytic sent-counter
  reconstruction) vs ``run_campaign(batch=0)`` (the per-tick engine
  loop).

This suite pins each claim differentially — same seeds, same worlds,
both implementations, byte equality — including the block-boundary and
final-partial-block edges where off-by-one bugs would live.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import Internet, InternetConfig, build_internet, decoupled_dynamics
from repro.obs import dump_to_json
from repro.prober.campaign import DEFAULT_BATCH, run_campaign
from repro.prober.encoding import (
    PROTOCOLS,
    ProbeTemplate,
    decode_quotation,
    encode_probe,
    encode_probe_into,
)
from repro.prober.output import dumps
from repro.prober.permutation import _VECTOR_MIN, KeyedPermutation
from repro.prober.yarrp6 import Yarrp6, Yarrp6Config
from repro.obs.metrics import MetricsRegistry

SRC = 0x20010DB8000000690000000000000001
TARGET = 0x20010DB8444400000000000000000042


_WORLDS = {}


def tiny_world(seed):
    """A small decoupled world plus its leaf-host targets, cached."""
    if seed not in _WORLDS:
        config = decoupled_dynamics(
            InternetConfig(
                seed=seed,
                n_edge=6,
                n_tier2=3,
                n_cpe_isps=1,
                cpe_customers_per_isp=12,
            )
        )
        built = build_internet(config)
        targets = tuple(
            subnet.prefix.base | 1 for subnet in built.truth.subnets.values()
        )
        _WORLDS[seed] = (config, targets)
    return _WORLDS[seed]


def record_key(record):
    return (
        record.target,
        record.ttl,
        record.hop,
        record.icmp_type,
        record.icmp_code,
        record.label,
        record.rtt_us,
        record.received_at,
        record.target_modified,
    )


class TestVectorizedPermutation:
    """numpy-columnar Feistel == pure-Python Feistel, value for value."""

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=20_000),
        key=st.integers(min_value=0, max_value=2**64),
        data=st.data(),
    )
    def test_vector_equals_scalar(self, n, key, data):
        perm = KeyedPermutation(n, key)
        start = data.draw(st.integers(min_value=0, max_value=n - 1))
        count = data.draw(st.integers(min_value=0, max_value=n - start))
        indices = range(start, start + count)
        assert perm.images(indices) == perm.images_scalar(indices)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=64, max_value=8192),
        key=st.integers(min_value=0, max_value=2**64),
        stride=st.integers(min_value=2, max_value=7),
    )
    def test_strided_ranges(self, n, key, stride):
        """Sharded walks feed strided ranges through the same path."""
        perm = KeyedPermutation(n, key)
        indices = range(1 % n, n, stride)
        assert perm.images(indices) == perm.images_scalar(indices)

    def test_vector_path_actually_engages(self):
        """Guard against silently always falling back: when numpy is
        present the range dispatch must reach the vector kernel."""
        numpy = pytest.importorskip("numpy")
        del numpy
        perm = KeyedPermutation(10_000, 7)
        calls = []
        original = perm._images_vector

        def spy(indices):
            calls.append(indices)
            return original(indices)

        perm._images_vector = spy
        perm.images(range(0, 4 * _VECTOR_MIN))
        assert calls

    def test_small_blocks_take_scalar_path(self):
        perm = KeyedPermutation(10_000, 7)
        perm._images_vector = None  # would raise if dispatched to
        short = range(0, _VECTOR_MIN - 1)
        assert perm.images(short) == perm.images_scalar(short)

    def test_non_range_iterables_take_scalar_path(self):
        perm = KeyedPermutation(1000, 3)
        indices = [5, 999, 0, 17, 17] * 20
        assert perm.images(indices) == perm.images_scalar(indices)

    def test_scalar_matches_getitem(self):
        perm = KeyedPermutation(777, 11)
        assert perm.images_scalar(range(777)) == [perm[i] for i in range(777)]


class TestTemplateEncoding:
    """Template patching produces the exact bytes of full assembly."""

    @settings(max_examples=60, deadline=None)
    @given(
        protocol=st.sampled_from(sorted(PROTOCOLS)),
        target=st.one_of(
            st.integers(min_value=0, max_value=2**128 - 1),
            st.sampled_from([0, 1, 2**128 - 1, 0xFFFF << 64, TARGET]),
        ),
        ttl=st.integers(min_value=1, max_value=255),
        elapsed=st.integers(min_value=0, max_value=2**32 - 1),
        instance=st.integers(min_value=0, max_value=255),
    )
    def test_encode_into_equals_encode_probe(
        self, protocol, target, ttl, elapsed, instance
    ):
        template = ProbeTemplate(SRC, instance=instance, protocol=protocol)
        buffer = template.new_buffer()
        encode_probe_into(template, buffer, target, ttl, elapsed)
        reference = encode_probe(
            SRC, target, ttl, elapsed, instance=instance, protocol=protocol
        )
        assert bytes(buffer) == reference

    def test_buffer_reuse_leaves_no_residue(self):
        """Patching the same buffer for wildly different targets must not
        leak state from earlier probes."""
        template = ProbeTemplate(SRC)
        buffer = template.new_buffer()
        probes = [
            (2**128 - 1, 255, 2**32 - 1),
            (0, 1, 0),
            (TARGET, 16, 123456),
            (1, 200, 999),
        ]
        for target, ttl, elapsed in probes:
            encode_probe_into(template, buffer, target, ttl, elapsed)
            assert bytes(buffer) == encode_probe(SRC, target, ttl, elapsed)

    @settings(max_examples=30, deadline=None)
    @given(
        protocol=st.sampled_from(sorted(PROTOCOLS)),
        target=st.integers(min_value=0, max_value=2**128 - 1),
        ttl=st.integers(min_value=1, max_value=255),
        elapsed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_round_trips_through_decoder(self, protocol, target, ttl, elapsed):
        """The patched probe must decode back to its own walk state when
        quoted in an ICMPv6 error, exactly like an assembled probe."""
        template = ProbeTemplate(SRC, protocol=protocol)
        buffer = template.new_buffer()
        encode_probe_into(template, buffer, target, ttl, elapsed)
        state = decode_quotation(bytes(buffer), instance=1)
        assert state.target == target
        assert state.ttl == ttl
        assert state.elapsed == elapsed


class TestBatchedPullLoop:
    """next_probes == repeated next_probe at the same virtual times."""

    def walk_scalar(self, prober, times):
        out = []
        for when in times:
            packet = prober.next_probe(when)
            if packet is None:
                break
            out.append((when, packet))
        return out

    @settings(max_examples=25, deadline=None)
    @given(
        n_targets=st.integers(min_value=1, max_value=40),
        max_ttl=st.integers(min_value=1, max_value=12),
        key=st.integers(min_value=0, max_value=2**64),
        chunks=st.lists(
            st.integers(min_value=1, max_value=70), min_size=1, max_size=6
        ),
    )
    def test_chunked_pull_equals_scalar_pull(self, n_targets, max_ttl, key, chunks):
        """Pulling the walk in arbitrary chunk sizes — including chunks
        that straddle the schedule's internal 256-pair blocks and a final
        partial chunk past exhaustion — yields the scalar byte stream."""
        targets = [TARGET + 7919 * index for index in range(n_targets)]
        config = Yarrp6Config(max_ttl=max_ttl, key=key)
        batched = Yarrp6(SRC, targets, config)
        scalar = Yarrp6(SRC, targets, config)

        clock = 0
        collected = []
        for chunk in chunks:
            times = [clock + 1000 * step for step in range(chunk)]
            collected.extend(batched.next_probes(times))
            clock += 1000 * chunk
        reference = self.walk_scalar(
            scalar, [1000 * step for step in range(sum(chunks))]
        )
        assert collected == reference
        assert batched.sent == scalar.sent

    def test_exhaustion_returns_short_then_empty(self):
        targets = [TARGET, TARGET + 1]
        prober = Yarrp6(SRC, targets, Yarrp6Config(max_ttl=3))
        total = len(prober.schedule)
        emissions = prober.next_probes(list(range(0, 10 * (total + 5), 10)))
        assert len(emissions) == total
        assert prober.next_probes([0, 1, 2]) == []
        assert prober.exhausted

    def test_mixing_scalar_and_batched_pulls(self):
        """A walk may be drained through both APIs interchangeably."""
        targets = [TARGET + index for index in range(9)]
        config = Yarrp6Config(max_ttl=5, key=99)
        mixed = Yarrp6(SRC, targets, config)
        scalar = Yarrp6(SRC, targets, config)
        times = list(range(0, 45 * 100, 100))
        stream = []
        cursor = 0
        for batch in (3, 0, 7, 1, 0, 50):
            if batch == 0:
                packet = mixed.next_probe(times[cursor])
                if packet is not None:
                    stream.append((times[cursor], packet))
                    cursor += 1
            else:
                got = mixed.next_probes(times[cursor : cursor + batch])
                stream.extend(got)
                cursor += len(got)
        assert stream == self.walk_scalar(scalar, times)

    def test_rejects_fill_mode(self):
        prober = Yarrp6(SRC, [TARGET], Yarrp6Config(fill=True))
        assert not prober.pure_walk
        with pytest.raises(ValueError):
            prober.next_probes([0])

    def test_rejects_neighborhood_mode(self):
        prober = Yarrp6(SRC, [TARGET], Yarrp6Config(neighborhood_ttl=4))
        assert not prober.pure_walk
        with pytest.raises(ValueError):
            prober.next_probes([0])


def run_pair(seed, pps, batch, n_targets=None, key=0xF00D, max_ttl=8):
    """One campaign through the reference path and one through the
    columnar path, on identical worlds."""
    config, targets = tiny_world(seed)
    targets = list(targets if n_targets is None else targets[:n_targets])
    results = []
    for batch_size in (0, batch):
        results.append(
            run_campaign(
                Internet.from_config(config),
                "US-EDU-1",
                targets,
                pps=pps,
                config=Yarrp6Config(max_ttl=max_ttl, key=key),
                metrics=MetricsRegistry(),
                batch=batch_size,
            )
        )
    return results


def merge_scoped(dump):
    """The merge-scoped, non-gauge view of a metrics dump — the portion
    the determinism contract covers.  Run-scoped instruments (the
    engine's events_scheduled/fired) legitimately differ between the
    per-event and columnar loops: fewer engine events IS the
    optimization.  ``merge_dumps`` excludes them for the same reason."""
    return {
        name: entry
        for name, entry in dump.items()
        if entry.get("scope") == "merge" and entry.get("kind") != "gauge"
    }


def assert_equivalent(reference, batched):
    assert dumps(batched) == dumps(reference)
    assert [record_key(r) for r in batched.records] == [
        record_key(r) for r in reference.records
    ]
    assert batched.sent == reference.sent
    assert batched.interfaces == reference.interfaces
    assert batched.curve == reference.curve
    assert batched.summary == reference.summary
    assert batched.response_labels == reference.response_labels
    assert batched.duration_us == reference.duration_us
    assert dump_to_json(merge_scoped(batched.metrics)) == dump_to_json(
        merge_scoped(reference.metrics)
    )


class TestBatchedCampaignEquivalence:
    """The acceptance criterion: batched == scalar, bytes for bytes,
    telemetry included."""

    @pytest.mark.parametrize("batch", [1, 2, DEFAULT_BATCH, 10**6])
    def test_batch_sizes(self, batch):
        reference, batched = run_pair(seed=7, pps=1000.0, batch=batch)
        assert_equivalent(reference, batched)

    def test_block_boundary_exact_division(self):
        """Walk length an exact multiple of the batch: the final block is
        full and the loop must still terminate on the last emission."""
        config, targets = tiny_world(7)
        n_targets = 6
        max_ttl = 8  # 6 targets x 8 TTLs = 48 emissions
        total = n_targets * max_ttl
        for batch in (total, total // 2, total // 4):
            assert total % batch == 0
            reference, batched = run_pair(
                seed=7, pps=1000.0, batch=batch, n_targets=n_targets, max_ttl=max_ttl
            )
            assert_equivalent(reference, batched)

    def test_final_partial_block(self):
        """Walk length one past a block boundary: the last block carries
        a single emission."""
        reference, batched = run_pair(
            seed=7, pps=1000.0, batch=47, n_targets=6, max_ttl=8
        )
        assert_equivalent(reference, batched)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.sampled_from([7, 21]),
        pps=st.sampled_from([250.0, 1000.0, 3333.0, 100_000.0]),
        batch=st.integers(min_value=1, max_value=200),
        n_targets=st.integers(min_value=1, max_value=25),
        key=st.integers(min_value=0, max_value=2**64),
    )
    def test_equivalence_property(self, seed, pps, batch, n_targets, key):
        reference, batched = run_pair(
            seed=seed, pps=pps, batch=batch, n_targets=n_targets, key=key
        )
        assert_equivalent(reference, batched)

    def test_batched_loop_fires_fewer_engine_events(self):
        """The point of the columnar loop: one engine event per block,
        not per probe.  Run-scoped engine counters must shrink while the
        merge-scoped telemetry (asserted elsewhere) stays identical."""
        reference, batched = run_pair(seed=7, pps=1000.0, batch=DEFAULT_BATCH)
        assert (
            batched.metrics["engine.events_fired"]["value"]
            < reference.metrics["engine.events_fired"]["value"]
        )

    def test_non_pure_walk_falls_back(self):
        """Fill mode must take the reference path even when a batch size
        is requested — and produce fill probes as usual."""
        config, targets = tiny_world(7)
        results = []
        for batch in (0, DEFAULT_BATCH):
            results.append(
                run_campaign(
                    Internet.from_config(config),
                    "US-EDU-1",
                    list(targets[:20]),
                    pps=1000.0,
                    config=Yarrp6Config(max_ttl=4, fill=True, fill_ceiling=10),
                    batch=batch,
                )
            )
        reference, fallback = results
        assert dumps(fallback) == dumps(reference)
        assert fallback.summary == reference.summary

    def test_negative_batch_rejected(self):
        config, targets = tiny_world(7)
        with pytest.raises(ValueError):
            run_campaign(
                Internet.from_config(config),
                "US-EDU-1",
                list(targets[:2]),
                batch=-1,
            )
