"""Tests for the keyed permutation and probe schedule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prober.permutation import KeyedPermutation, ProbeSchedule


class TestKeyedPermutation:
    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            KeyedPermutation(0, 1)

    def test_single_element(self):
        perm = KeyedPermutation(1, 42)
        assert perm[0] == 0

    def test_out_of_range_index(self):
        perm = KeyedPermutation(10, 1)
        with pytest.raises(IndexError):
            perm[10]
        with pytest.raises(IndexError):
            perm[-1]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=5000), st.integers(min_value=0, max_value=2**64))
    def test_bijection(self, n, key):
        perm = KeyedPermutation(n, key)
        values = [perm[index] for index in range(n)]
        assert sorted(values) == list(range(n))

    def test_different_keys_different_orders(self):
        a = list(KeyedPermutation(1000, 1))
        b = list(KeyedPermutation(1000, 2))
        assert a != b

    def test_deterministic(self):
        assert list(KeyedPermutation(500, 7)) == list(KeyedPermutation(500, 7))

    def test_actually_shuffles(self):
        """The walk must not be close to sequential: consecutive outputs
        should rarely be adjacent (burst avoidance)."""
        values = list(KeyedPermutation(4096, 99))
        adjacent = sum(
            1 for a, b in zip(values, values[1:]) if abs(a - b) == 1
        )
        assert adjacent < len(values) * 0.01


class TestBlockFastPath:
    """The batched fast path must be indistinguishable from repeated
    single-index evaluation — it exists purely to amortize loop overhead
    in Yarrp6's pull loop."""

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=3000),
        key=st.integers(min_value=0, max_value=2**64),
        data=st.data(),
    )
    def test_block_equals_indexing(self, n, key, data):
        """Satellite 2: block(start, count) == [perm[i] for i in the same
        range], over random domains including non-power-of-two sizes
        (cycle-walking) and blocks running up to the domain end."""
        perm = KeyedPermutation(n, key)
        start = data.draw(st.integers(min_value=0, max_value=n - 1))
        count = data.draw(st.integers(min_value=0, max_value=n - start))
        assert perm.block(start, count) == [
            perm[index] for index in range(start, start + count)
        ]

    def test_block_spans_entire_domain(self):
        for n in (1, 2, 7, 64, 100, 1023, 1024, 1025):
            perm = KeyedPermutation(n, 42)
            assert perm.block(0, n) == [perm[i] for i in range(n)]

    def test_block_bounds(self):
        perm = KeyedPermutation(10, 1)
        with pytest.raises(IndexError):
            perm.block(0, 11)
        with pytest.raises(IndexError):
            perm.block(9, 2)
        with pytest.raises(IndexError):
            perm.block(-1, 1)
        assert perm.block(10, 0) == []

    def test_iter_uses_chunks_consistently(self):
        """__iter__ now walks in chunks; order must be unchanged."""
        perm = KeyedPermutation(2500, 17)
        assert list(perm) == [perm[i] for i in range(2500)]

    @settings(max_examples=25, deadline=None)
    @given(
        n_targets=st.integers(min_value=1, max_value=60),
        shards=st.integers(min_value=1, max_value=5),
        key=st.integers(min_value=0, max_value=2**32),
        data=st.data(),
    )
    def test_schedule_block_equals_pair(self, n_targets, shards, key, data):
        shard = data.draw(st.integers(min_value=0, max_value=shards - 1))
        schedule = ProbeSchedule(
            n_targets, 1, 6, key=key, shard=shard, shards=shards
        )
        total = len(schedule)
        start = data.draw(st.integers(min_value=0, max_value=total))
        count = data.draw(st.integers(min_value=0, max_value=total - start))
        assert schedule.block(start, count) == [
            schedule.pair(index) for index in range(start, start + count)
        ]

    def test_schedule_block_bounds(self):
        schedule = ProbeSchedule(5, 1, 4, key=1, shard=1, shards=2)
        with pytest.raises(IndexError):
            schedule.block(0, len(schedule) + 1)
        assert schedule.block(0, len(schedule)) == list(schedule)


class TestProbeSchedule:
    def test_total(self):
        schedule = ProbeSchedule(10, 1, 16, key=1)
        assert len(schedule) == 160

    def test_covers_every_pair_once(self):
        schedule = ProbeSchedule(7, 1, 5, key=3)
        pairs = list(schedule)
        assert len(pairs) == len(set(pairs)) == 35
        assert {ttl for _, ttl in pairs} == set(range(1, 6))
        assert {index for index, _ in pairs} == set(range(7))

    def test_ttl_offset_range(self):
        schedule = ProbeSchedule(3, 4, 8, key=1)
        assert all(4 <= ttl <= 8 for _, ttl in schedule)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeSchedule(0, 1, 16, key=1)
        with pytest.raises(ValueError):
            ProbeSchedule(5, 8, 4, key=1)
        with pytest.raises(ValueError):
            ProbeSchedule(5, 0, 4, key=1)

    def test_spreads_ttl_one(self):
        """TTL=1 probes (the rate-limit-sensitive ones) are spread across
        the walk, not clustered at the front."""
        schedule = ProbeSchedule(256, 1, 16, key=11)
        positions = [
            position for position, (_, ttl) in enumerate(schedule) if ttl == 1
        ]
        total = len(schedule)
        # First TTL=1 probe well within the first 5% of the walk; last
        # within the final 5%; roughly uniform in between.
        assert positions[0] < total * 0.05
        assert positions[-1] > total * 0.95
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert max(gaps) < total * 0.05
