"""Tests for multi-worker permutation sharding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import Internet, InternetConfig, build_internet
from repro.prober import run_yarrp6
from repro.prober.permutation import ProbeSchedule
from repro.prober.yarrp6 import Yarrp6Config


class TestScheduleSharding:
    def test_shards_partition_the_space(self):
        full = set(ProbeSchedule(13, 1, 7, key=5))
        shard_union = set()
        total = 0
        for shard in range(4):
            schedule = ProbeSchedule(13, 1, 7, key=5, shard=shard, shards=4)
            pairs = list(schedule)
            assert len(pairs) == len(schedule)
            total += len(pairs)
            overlap = shard_union & set(pairs)
            assert not overlap
            shard_union |= set(pairs)
        assert shard_union == full
        assert total == 13 * 7

    def test_single_shard_is_identity(self):
        base = list(ProbeSchedule(10, 1, 4, key=9))
        solo = list(ProbeSchedule(10, 1, 4, key=9, shard=0, shards=1))
        assert base == solo

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeSchedule(5, 1, 4, key=1, shard=2, shards=2)
        with pytest.raises(ValueError):
            ProbeSchedule(5, 1, 4, key=1, shard=0, shards=0)
        with pytest.raises(IndexError):
            ProbeSchedule(5, 1, 4, key=1, shard=0, shards=2).pair(10**6)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_partition_property(self, n_targets, shards, key):
        full = sorted(ProbeSchedule(n_targets, 1, 5, key=key))
        merged = []
        for shard in range(shards):
            merged.extend(
                ProbeSchedule(n_targets, 1, 5, key=key, shard=shard, shards=shards)
            )
        assert sorted(merged) == full


class TestShardedCampaigns:
    @pytest.fixture(scope="class")
    def built(self):
        return build_internet(
            InternetConfig(n_edge=20, cpe_customers_per_isp=80, seed=29)
        )

    def test_two_workers_cover_one_campaign(self, built):
        """Two shards' combined discovery equals the solo run's (same
        probes, just split across instances)."""
        targets = [
            subnet.prefix.base | 1 for subnet in list(built.truth.subnets.values())[:80]
        ]
        solo_net = Internet(built)
        solo = run_yarrp6(solo_net, "US-EDU-1", targets, pps=500, max_ttl=12)

        shard_interfaces = set()
        total_sent = 0
        shard_net = Internet(built)
        for shard in range(2):
            shard_net.reset_dynamics()
            result = run_yarrp6(
                shard_net,
                "US-EDU-1",
                targets,
                pps=500,
                config=Yarrp6Config(max_ttl=12, shard=shard, shards=2, instance=shard + 1),
            )
            shard_interfaces |= result.interfaces
            total_sent += result.sent
        assert total_sent == solo.sent
        # Responses are probabilistic at the margins; coverage matches
        # within a whisker.
        overlap = len(shard_interfaces & solo.interfaces)
        assert overlap > len(solo.interfaces) * 0.95
