"""Behavioural tests for Yarrp6 and the baseline probers (integration
with the simulated internet)."""

import pytest

from repro.netsim import Internet, InternetConfig, build_internet
from repro.prober import (
    DoubletreeConfig,
    SequentialConfig,
    Yarrp6,
    Yarrp6Config,
    run_campaign,
    run_doubletree,
    run_sequential,
    run_yarrp6,
)


@pytest.fixture(scope="module")
def built():
    return build_internet(
        InternetConfig(n_edge=50, cpe_customers_per_isp=300, seed=21)
    )


@pytest.fixture()
def net(built):
    internet = Internet(built)
    internet.reset_dynamics()
    return internet


@pytest.fixture(scope="module")
def host_targets(built):
    targets = []
    for subnet in built.truth.subnets.values():
        if subnet.host_iids:
            targets.append(subnet.host_addresses()[0])
        if len(targets) >= 150:
            break
    return targets


class TestYarrp6Unit:
    def test_requires_targets(self):
        with pytest.raises(ValueError):
            Yarrp6(1, [])

    def test_emission_count(self, net, host_targets):
        vantage = net.vantage("US-EDU-1")
        prober = Yarrp6(vantage.address, host_targets[:10], Yarrp6Config(max_ttl=4))
        packets = []
        while True:
            packet = prober.next_probe(now=len(packets))
            if packet is None:
                break
            packets.append(packet)
        assert len(packets) == 10 * 4
        assert prober.sent == 40
        assert prober.exhausted

    def test_stateless_no_per_target_storage(self, net, host_targets):
        """The prober must not grow per-target state while emitting."""
        vantage = net.vantage("US-EDU-1")
        prober = Yarrp6(vantage.address, host_targets[:50], Yarrp6Config(max_ttl=8))
        for _ in range(200):
            prober.next_probe(0)
        assert not prober._fill_queue
        # Its only cursor state is the walk position.
        assert prober._cursor == 200


class TestYarrp6Campaign:
    def test_discovers_interfaces(self, net, host_targets):
        result = run_yarrp6(net, "US-EDU-1", host_targets, pps=500, max_ttl=16)
        assert result.sent == len(host_targets) * 16
        assert len(result.interfaces) > 20
        assert result.response_labels.get("time exceeded", 0) > 0

    def test_interfaces_are_real(self, net, built, host_targets):
        """Every discovered interface is a genuine router interface."""
        result = run_yarrp6(net, "US-EDU-1", host_targets, pps=500, max_ttl=16)
        for interface in result.interfaces:
            assert interface in built.truth.router_addresses

    def test_curve_monotone(self, net, host_targets):
        result = run_yarrp6(net, "US-EDU-1", host_targets, pps=500, max_ttl=16)
        sent_values = [sent for sent, _ in result.curve]
        unique_values = [unique for _, unique in result.curve]
        assert sent_values == sorted(sent_values)
        assert unique_values == list(range(1, len(unique_values) + 1))

    def test_rtt_reasonable(self, net, host_targets):
        result = run_yarrp6(net, "US-EDU-1", host_targets[:40], pps=200, max_ttl=8)
        for record in result.records:
            assert 0 < record.rtt_us < 1_000_000

    def test_deterministic_given_seed(self, built, host_targets):
        first = run_yarrp6(Internet(built), "US-EDU-1", host_targets[:50], pps=500)
        second = run_yarrp6(Internet(built), "US-EDU-1", host_targets[:50], pps=500)
        assert first.interfaces == second.interfaces
        assert first.sent == second.sent


class TestFillMode:
    def test_fill_extends_paths(self, net, host_targets):
        """With max TTL below path length, fill mode recovers the missing
        tail hops."""
        short = run_yarrp6(net, "US-EDU-1", host_targets, pps=500, max_ttl=8)
        net.reset_dynamics()
        filled = run_yarrp6(
            net, "US-EDU-1", host_targets, pps=500, max_ttl=8, fill=True
        )
        assert filled.summary["fills"] > 0
        assert len(filled.interfaces) > len(short.interfaces)
        deepest_short = max(record.ttl for record in short.records)
        deepest_filled = max(record.ttl for record in filled.records)
        assert deepest_short <= 8 < deepest_filled

    def test_fill_ceiling_respected(self, net, host_targets):
        result = run_yarrp6(
            net,
            "US-EDU-1",
            host_targets[:60],
            pps=500,
            max_ttl=4,
            fill=True,
            fill_ceiling=6,
        )
        assert max(record.ttl for record in result.records) <= 6

    def test_fills_stop_at_silent_hop(self, net, built):
        """A non-responsive hop past max TTL ends the fill chain (the
        Table 6 effect: maxTTL=4 yields few fills when hop five is dark)."""
        # Use unrouted targets: the error terminal means no TE past the
        # transit hops, so fills cannot run away.
        targets = [0x3FFF << 112 | index for index in range(30)]
        result = run_yarrp6(
            net, "US-EDU-1", targets, pps=500, max_ttl=4, fill=True, fill_ceiling=32
        )
        assert result.summary["fills"] <= result.sent


class TestNeighborhood:
    def test_neighborhood_skips_probes(self, net, host_targets):
        plain = run_yarrp6(net, "US-EDU-1", host_targets, pps=2000, max_ttl=16)
        net.reset_dynamics()
        neighborly = run_yarrp6(
            net,
            "US-EDU-1",
            host_targets,
            pps=2000,
            max_ttl=16,
            neighborhood_ttl=3,
            neighborhood_window_us=200_000,
        )
        assert neighborly.summary["skipped"] > 0
        assert neighborly.sent < plain.sent
        # The savings barely cost discovery: near hops are few.
        assert len(neighborly.interfaces) >= len(plain.interfaces) * 0.9


class TestSequential:
    def test_gap_limit_stops_dead_traces(self, net):
        """Traces into silent space stop after the gap limit instead of
        burning the full TTL range."""
        # Admin-filtered or unrouted targets go quiet past the transit.
        targets = [0x3FFF << 112 | index for index in range(40)]
        result = run_sequential(
            net, "US-EDU-1", targets, pps=500,
            config=None,
        )
        assert result.sent < 40 * 16

    def test_terminal_response_stops_trace(self, net, host_targets):
        result = run_sequential(net, "US-EDU-1", host_targets[:50], pps=200)
        assert result.summary["completed_traces"] > 0

    def test_requires_targets(self):
        from repro.prober.traceroute import SequentialProber

        with pytest.raises(ValueError):
            SequentialProber(1, [])


class TestRateLimitContrast:
    def test_yarrp_beats_sequential_at_speed(self, built):
        """Figure 5's core claim: at high rates, randomized probing keeps
        first-hop responsiveness where sequential probing collapses."""
        targets = []
        for subnet in built.truth.subnets.values():
            targets.append(subnet.prefix.base | 0x1234)
            if len(targets) >= 400:
                break

        def hop1_fraction(result):
            responded = {
                record.target for record in result.records if record.ttl == 1
            }
            return len(responded) / len(targets)

        fast_net = Internet(built)
        yarrp_fast = run_yarrp6(fast_net, "US-EDU-1", targets, pps=2000)
        seq_fast = run_sequential(fast_net, "US-EDU-1", targets, pps=2000)
        yarrp_slow = run_yarrp6(fast_net, "US-EDU-1", targets, pps=20)
        assert hop1_fraction(yarrp_fast) > 0.9
        assert hop1_fraction(seq_fast) < 0.6
        assert hop1_fraction(yarrp_slow) > 0.9


class TestDoubletree:
    def test_backward_and_forward(self, net, host_targets):
        result = run_doubletree(
            net, "US-EDU-1", host_targets[:80], pps=500,
            config=DoubletreeConfig(start_ttl=8, max_ttl=16),
        )
        ttls = {record.ttl for record in result.records}
        assert min(ttls) < 8 <= max(ttls)

    def test_fewer_probes_than_sequential(self, net, host_targets):
        """Doubletree's stop sets save probes relative to full sweeps."""
        doubletree = run_doubletree(net, "US-EDU-1", host_targets, pps=500)
        net.reset_dynamics()
        assert doubletree.sent < len(host_targets) * 16

    def test_start_ttl_validation(self):
        from repro.prober.doubletree import DoubletreeProber

        with pytest.raises(ValueError):
            DoubletreeProber(1, [2], DoubletreeConfig(start_ttl=20, max_ttl=16))

    def test_backward_probing_continues_through_silence(self, built):
        """The paper's pathology: rate-limited (silent) near hops never
        satisfy the backward stop rule, so Doubletree keeps probing them."""
        targets = []
        for subnet in built.truth.subnets.values():
            targets.append(subnet.prefix.base | 0x1234)
            if len(targets) >= 300:
                break
        net = Internet(built)
        result = run_doubletree(
            net, "US-EDU-1", targets, pps=2000,
            config=DoubletreeConfig(start_ttl=8, max_ttl=16, window=300),
        )
        # TTL=1 probes were sent for the vast majority of traces: the
        # stop set cannot trigger when the drained hop stays silent.
        ttl1_probes = result.summary["sent"]
        backward_records = [r for r in result.records if r.ttl < 8]
        assert ttl1_probes > len(targets) * 8  # backward walks ran long


class TestCampaignRunner:
    def test_unknown_prober(self, net, host_targets):
        with pytest.raises(ValueError):
            run_campaign(net, "US-EDU-1", host_targets[:5], prober="warts")

    def test_result_metadata(self, net, host_targets):
        result = run_yarrp6(net, "EU-NET", host_targets[:20], pps=100, max_ttl=4)
        assert result.vantage == "EU-NET"
        assert result.prober == "yarrp6"
        assert result.pps == 100
        assert result.targets == 20
        assert result.duration_us > 0
        assert 0 <= result.yield_per_probe <= 1
