"""Tests for path MTU discovery against ground-truth link MTUs."""

import pytest

from repro.netsim import Internet, InternetConfig, build_internet
from repro.prober.pmtud import PMTUDConfig, discover_pmtu, mtu_census


@pytest.fixture(scope="module")
def built():
    return build_internet(
        InternetConfig(
            n_edge=60,
            cpe_customers_per_isp=150,
            seed=47,
            tunnel_fraction=0.3,   # plenty of 1480 paths
            response_loss=0.0,
        )
    )


def truth_pmtu(net, vantage, target):
    path = net.path_for(net.vantage(vantage), target, 0)
    return path.path_mtu


def pick_targets(built, predicate, limit=25):
    out = []
    for subnet in built.truth.subnets.values():
        if subnet.host_iids and predicate(built.truth.ases[subnet.gateway.asn]):
            out.append(subnet.host_addresses()[0])
        if len(out) >= limit:
            break
    return out


class TestGroundTruthMtu:
    def test_tunneled_ases_exist(self, built):
        tunneled = [a for a in built.truth.ases.values() if a.link_mtu == 1480]
        assert tunneled

    def test_path_mtu_reflects_bottleneck(self, built):
        net = Internet(built)
        target = pick_targets(built, lambda a: a.link_mtu == 1480, 1)[0]
        path = net.path_for(net.vantage("US-EDU-1"), target, 0)
        assert path.path_mtu == 1480

    def test_oversize_probe_gets_ptb(self, built):
        from repro.packet import icmpv6, ipv6
        from repro.prober.pmtud import _padded_probe

        net = Internet(built)
        target = pick_targets(built, lambda a: a.link_mtu == 1480, 1)[0]
        vantage = net.vantage("US-EDU-1")
        response = net.probe(_padded_probe(vantage.address, target, 1500), 0)
        assert response is not None
        _, payload = ipv6.split_packet(response.data)
        message = icmpv6.ICMPv6Message.unpack(payload)
        assert message.msg_type == icmpv6.TYPE_PACKET_TOO_BIG
        assert message.word == 1480

    def test_fitting_probe_passes(self, built):
        from repro.packet import icmpv6, ipv6
        from repro.prober.pmtud import _padded_probe

        net = Internet(built)
        target = pick_targets(built, lambda a: a.link_mtu == 1480, 1)[0]
        vantage = net.vantage("US-EDU-1")
        response = net.probe(_padded_probe(vantage.address, target, 1480), 0)
        assert response is not None
        _, payload = ipv6.split_packet(response.data)
        assert icmpv6.ICMPv6Message.unpack(payload).is_echo_reply


class TestDiscovery:
    def test_recovers_truth(self, built):
        net = Internet(built)
        targets = pick_targets(built, lambda a: True, 40)
        results = discover_pmtu(net, "US-EDU-1", targets)
        checked = 0
        for target, result in results.items():
            truth = truth_pmtu(net, "US-EDU-1", target)
            if result.confirmed:
                assert result.path_mtu == truth, hex(target)
                checked += 1
        assert checked >= len(targets) * 0.8

    def test_tunnel_paths_report_bottleneck_hop(self, built):
        net = Internet(built)
        targets = pick_targets(built, lambda a: a.link_mtu == 1480, 10)
        results = discover_pmtu(net, "US-EDU-1", targets)
        confirmed = [r for r in results.values() if r.confirmed and r.path_mtu == 1480]
        assert confirmed
        assert all(r.bottleneck_hop is not None for r in confirmed)

    def test_clean_paths_one_round(self, built):
        net = Internet(built)
        targets = pick_targets(built, lambda a: a.link_mtu == 1500, 10)
        results = discover_pmtu(net, "US-EDU-1", targets)
        for result in results.values():
            if result.confirmed:
                assert result.path_mtu == 1500
                assert result.rounds == 1

    def test_census(self, built):
        net = Internet(built)
        targets = pick_targets(built, lambda a: True, 40)
        results = discover_pmtu(net, "US-EDU-1", targets)
        census = mtu_census(results)
        assert set(census) <= {1280, 1480, 1500}
        assert sum(census.values()) >= 1
