"""Hash-randomization regression: campaign dumps must be byte-identical
across interpreter processes started with different PYTHONHASHSEED
values (no iteration order anywhere may depend on ``hash(str)``)."""

import os
import subprocess
import sys

from repro.cli.main import main

HERE = os.path.dirname(__file__)
SRC = os.path.normpath(os.path.join(HERE, "..", "..", "src"))


def probe_under_hash_seed(base, world, targets, hash_seed):
    out = str(base / ("run-hashseed-%s.yrp6" % hash_seed))
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli.main", "probe",
         "--world", world, "--targets", targets, "--workers", "2",
         "--out", out],
        capture_output=True,
        text=True,
        env=env,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    with open(out, "rb") as handle:
        return handle.read()


def test_dump_identical_across_hash_seeds(tmp_path):
    world = str(tmp_path / "world.json")
    seeds = str(tmp_path / "seeds.jsonl")
    targets = str(tmp_path / "targets.jsonl")
    assert main(["world", "--seed", "5", "--edge", "10", "--cpe", "30",
                 "--out", world]) == 0
    assert main(["seeds", "--world", world, "--source", "caida",
                 "--out", seeds]) == 0
    assert main(["targets", "--seeds", seeds, "--out", targets]) == 0
    first = probe_under_hash_seed(tmp_path, world, targets, "1")
    second = probe_under_hash_seed(tmp_path, world, targets, "2")
    assert first
    assert first == second
