"""FaultSan chaos grid (``pytest --faultsan``): fault-injected worker
pools versus the byte-identity contract.

Every test here injects a real failure — a crash, a self-SIGKILL, a
hang past the deadline, an unpicklable result — into a live pool and
asserts the two halves of the supervision contract:

* **recovery is invisible**: the merged records, curve, summary and
  metrics serialize byte-for-byte like an unfaulted ``run_single``;
* **the bookkeeping is exact**: the ``failures`` block (and the run
  manifest built from it) records precisely the injected faults — the
  right shard, attempt, and cause — and nothing else.

When ``REPRO_FAULTSAN_REPORT_DIR`` is set (CI's chaos job), each test
drops its FailureReport block there as JSON for the artifact upload.
"""

import json
import multiprocessing
import os

import pytest

from repro.lint.faultsan import (
    KIND_CORRUPT,
    KIND_CRASH,
    KIND_HANG,
    KIND_SIGKILL,
    SITE_WORKER_RESULT,
    Fault,
    FaultPlan,
    seeded_plan,
)
from repro.netsim import InternetConfig, build_internet, decoupled_dynamics
from repro.obs import build_manifest, deterministic_view, manifest_dumps
from repro.prober import (
    CampaignSpec,
    ShardFailure,
    SuperviseConfig,
    run_parallel,
    run_single,
)
from repro.prober.output import dumps

pytestmark = [
    pytest.mark.faultsan,
    pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    ),
]

_WORLDS = {}
_REFERENCES = {}


def make_spec(seed=11, n_targets=20, metrics=False):
    if seed not in _WORLDS:
        config = decoupled_dynamics(
            InternetConfig(
                seed=seed,
                n_edge=6,
                n_tier2=3,
                n_cpe_isps=1,
                cpe_customers_per_isp=12,
            )
        )
        built = build_internet(config)
        targets = tuple(
            subnet.prefix.base | 1 for subnet in built.truth.subnets.values()
        )
        _WORLDS[seed] = (config, targets)
    config, targets = _WORLDS[seed]
    return CampaignSpec(
        internet=config,
        vantage="US-EDU-1",
        targets=targets[:n_targets],
        pps=1100.0,
        metrics=metrics,
    )


def reference_dump(spec):
    """The unfaulted single-process bytes, computed once per spec."""
    key = (spec.internet.seed, len(spec.targets), spec.metrics)
    if key not in _REFERENCES:
        _REFERENCES[key] = dumps(run_single(spec))
    return _REFERENCES[key]


def export_report(block, name):
    """CI artifact hook: drop the failures block as JSON if asked to."""
    out_dir = os.environ.get("REPRO_FAULTSAN_REPORT_DIR")
    if not out_dir:
        return
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, name + ".json"), "w") as sink:
        json.dump(block, sink, indent=2, sort_keys=True)
        sink.write("\n")


#: Hung workers sleep far past this; the deadline must cut them down.
TIMEOUT_S = 1.0

#: (id, fault for shard 1 attempt 1, expected recorded cause)
GRID = [
    ("crash", Fault(shard=1, kind=KIND_CRASH), "crash"),
    ("sigkill", Fault(shard=1, kind=KIND_SIGKILL), "worker-died"),
    ("hang", Fault(shard=1, kind=KIND_HANG, seconds=60.0), "timeout"),
    (
        "corrupt",
        Fault(shard=1, kind=KIND_CORRUPT, site=SITE_WORKER_RESULT),
        "corrupt-result",
    ),
]


class TestChaosGrid:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize(
        "name,fault,cause", GRID, ids=[row[0] for row in GRID]
    )
    def test_recovery_is_byte_identical_and_exactly_accounted(
        self, name, fault, cause, shards
    ):
        spec = make_spec()
        merged = run_parallel(
            spec,
            shards=shards,
            processes=2,
            start_method="fork",
            supervise=SuperviseConfig(
                shard_timeout_s=TIMEOUT_S, max_retries=2, backoff_base_s=0.0
            ),
            fault_plan=FaultPlan((fault,)),
        )
        assert dumps(merged) == reference_dump(spec)
        block = merged.failures
        assert [
            (f["shard"], f["attempt"], f["cause"]) for f in block["attempts"]
        ] == [(1, 1, cause)]
        counts = {
            key: entry["value"] for key, entry in block["metrics"].items()
        }
        assert counts["shard.retries"] == 1
        assert counts["shard.degraded"] == 0
        assert sum(
            value
            for key, value in counts.items()
            if key not in ("shard.retries", "shard.degraded")
        ) == 1
        export_report(block, "recover-%s-%dshards" % (name, shards))

    def test_merged_metrics_survive_a_faulted_run(self):
        """Byte-identity includes the telemetry merge: supervision
        counters must never leak into the campaign's own registries."""
        spec = make_spec(metrics=True)
        merged = run_parallel(
            spec,
            shards=4,
            processes=2,
            start_method="fork",
            supervise=SuperviseConfig(max_retries=1, backoff_base_s=0.0),
            fault_plan=FaultPlan.single(2, KIND_CRASH),
        )
        assert dumps(merged) == reference_dump(spec)
        assert not any(
            key.startswith("shard.") for key in (merged.metrics or {})
        )

    def test_multi_fault_plan_recovers_every_shard(self):
        spec = make_spec()
        plan = FaultPlan(
            (
                Fault(shard=0, kind=KIND_CRASH),
                Fault(shard=1, kind=KIND_CORRUPT, site=SITE_WORKER_RESULT),
                Fault(shard=3, kind=KIND_CRASH, attempt=2),
            )
        )
        merged = run_parallel(
            spec,
            shards=4,
            processes=2,
            start_method="fork",
            supervise=SuperviseConfig(max_retries=2, backoff_base_s=0.0),
            fault_plan=plan,
        )
        assert dumps(merged) == reference_dump(spec)
        assert [
            (f["shard"], f["attempt"], f["cause"])
            for f in merged.failures["attempts"]
        ] == [(0, 1, "crash"), (1, 1, "corrupt-result")]
        # shard 3's fault names attempt 2, which a fault-free attempt 1
        # never reaches: the plan only fires where the run actually goes.

    def test_seeded_plan_grid_recovers(self):
        """A generated plan (the fuzz shape) recovers like a hand-written
        one; crash/corrupt kinds only, so no sleeps and no kills."""
        spec = make_spec()
        plan = seeded_plan(
            seed=2018, shards=4, kinds=(KIND_CRASH, KIND_CORRUPT), faults=3
        )
        merged = run_parallel(
            spec,
            shards=4,
            processes=2,
            start_method="fork",
            supervise=SuperviseConfig(max_retries=3, backoff_base_s=0.0),
            fault_plan=plan,
        )
        assert dumps(merged) == reference_dump(spec)


class TestExhaustionAndDegradation:
    def test_exhausted_retries_raise_with_exact_history(self):
        spec = make_spec()
        with pytest.raises(ShardFailure) as excinfo:
            run_parallel(
                spec,
                shards=2,
                processes=2,
                start_method="fork",
                supervise=SuperviseConfig(max_retries=1, backoff_base_s=0.0),
                fault_plan=FaultPlan.exhaust(1, KIND_CRASH, attempts=2),
            )
        error = excinfo.value
        assert "shard 1 worker failed permanently" in str(error)
        assert "crash on attempt 2 of 2" in str(error)
        assert [
            (entry["shard"], entry["attempts"]) for entry in error.failures
        ] == [(1, 2)]

    @pytest.mark.parametrize("shards", [2, 4])
    def test_degrade_serial_finishes_byte_identically(self, shards):
        spec = make_spec()
        merged = run_parallel(
            spec,
            shards=shards,
            processes=2,
            start_method="fork",
            supervise=SuperviseConfig(
                max_retries=1, backoff_base_s=0.0, degrade="serial"
            ),
            fault_plan=FaultPlan.exhaust(1, KIND_CRASH, attempts=2),
        )
        assert dumps(merged) == reference_dump(spec)
        block = merged.failures
        assert block["degraded"] == [1]
        counts = {
            key: entry["value"] for key, entry in block["metrics"].items()
        }
        assert counts["shard.crashes"] == 2
        assert counts["shard.degraded"] == 1
        export_report(block, "degrade-serial-%dshards" % shards)


class TestManifestIntegration:
    def test_manifest_records_exactly_the_injected_faults(self):
        spec = make_spec()
        merged = run_parallel(
            spec,
            shards=2,
            processes=2,
            start_method="fork",
            supervise=SuperviseConfig(
                shard_timeout_s=TIMEOUT_S, max_retries=2, backoff_base_s=0.0
            ),
            fault_plan=FaultPlan.single(1, KIND_SIGKILL),
        )
        manifest = build_manifest(
            merged, seed=spec.internet.seed, failures=merged.failures
        )
        block = manifest["failures"]
        assert block["format"] == "repro-failures/1"
        assert [
            (f["shard"], f["attempt"], f["cause"]) for f in block["attempts"]
        ] == [(1, 1, "worker-died")]
        # ... and the deterministic view strips it: how often this host
        # lost a worker is a fact about the host, not the spec.
        assert "failures" not in deterministic_view(manifest)
        export_report(block, "manifest-sigkill")

    def test_faulted_manifest_view_matches_clean_run(self):
        spec = make_spec()
        clean = run_parallel(spec, shards=2, processes=2, start_method="fork")
        faulted = run_parallel(
            spec,
            shards=2,
            processes=2,
            start_method="fork",
            supervise=SuperviseConfig(max_retries=1, backoff_base_s=0.0),
            fault_plan=FaultPlan.single(0, KIND_CRASH),
        )
        seed = spec.internet.seed
        clean_view = deterministic_view(
            build_manifest(clean, seed=seed, failures=clean.failures)
        )
        faulted_view = deterministic_view(
            build_manifest(faulted, seed=seed, failures=faulted.failures)
        )
        assert manifest_dumps(faulted_view) == manifest_dumps(clean_view)
