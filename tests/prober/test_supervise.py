"""Supervised shard execution: config validation, deterministic backoff,
retry/exhaust/degrade semantics, and pool shutdown hygiene.

These are the fast always-on recovery tests: fault injection here uses
in-process ``crash``/``corrupt``/``mark-exit`` faults only, so nothing
sleeps past a deadline or SIGKILLs a worker.  The full chaos grid
(hang, SIGKILL, spawn pools) lives in ``test_faultsan.py`` behind
``pytest --faultsan``.

The load-bearing property throughout: a shard is a pure function of
``(spec, shard, shards)``, so a retried or degraded run must serialize
byte-for-byte like a run that never faulted.
"""

import multiprocessing

import pytest

from repro.lint.faultsan import (
    KIND_CORRUPT,
    KIND_CRASH,
    KIND_MARK_EXIT,
    SITE_WORKER_RESULT,
    Fault,
    FaultPlan,
)
from repro.netsim import InternetConfig, build_internet, decoupled_dynamics
from repro.obs import WallProfiler
from repro.obs.failures import CAUSE_CRASH
from repro.prober import (
    CampaignSpec,
    ShardFailure,
    SuperviseConfig,
    backoff_delay_s,
    run_parallel,
    run_single,
    validate_supervise,
)
from repro.prober import deadline
from repro.prober import parallel as parallel_module
from repro.prober import supervise as supervise_module
from repro.prober.output import dumps

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

_WORLDS = {}


def make_spec(n_targets=20, seed=11, metrics=False):
    """A tiny decoupled world plus a campaign spec over its leaf hosts."""
    if seed not in _WORLDS:
        config = decoupled_dynamics(
            InternetConfig(
                seed=seed,
                n_edge=6,
                n_tier2=3,
                n_cpe_isps=1,
                cpe_customers_per_isp=12,
            )
        )
        built = build_internet(config)
        targets = tuple(
            subnet.prefix.base | 1 for subnet in built.truth.subnets.values()
        )
        _WORLDS[seed] = (config, targets)
    config, targets = _WORLDS[seed]
    return CampaignSpec(
        internet=config,
        vantage="US-EDU-1",
        targets=targets[:n_targets],
        pps=1100.0,
        metrics=metrics,
    )


#: Retry fast in tests: no backoff sleeps between attempts.
RETRY = SuperviseConfig(max_retries=1, backoff_base_s=0.0)


def attempt_keys(merged):
    block = merged.failures
    return [(f["shard"], f["attempt"], f["cause"]) for f in block["attempts"]]


# -- config validation ------------------------------------------------------


class TestValidation:
    @pytest.mark.parametrize(
        "config",
        [
            SuperviseConfig(shard_timeout_s=0.0),
            SuperviseConfig(shard_timeout_s=-1.0),
            SuperviseConfig(max_retries=-1),
            SuperviseConfig(backoff_base_s=-0.01),
            SuperviseConfig(degrade="panic"),
            SuperviseConfig(poll_interval_s=0.0),
        ],
    )
    def test_bad_fields_raise(self, config):
        with pytest.raises(ValueError):
            validate_supervise(config)

    def test_defaults_validate(self):
        validate_supervise(SuperviseConfig())
        assert SuperviseConfig(max_retries=2).attempts() == 3

    def test_invalid_config_never_starts_a_pool(self, monkeypatch):
        def bomb(*args, **kwargs):
            raise AssertionError("pool must not start for an invalid config")

        monkeypatch.setattr(parallel_module, "_make_pool", bomb)
        with pytest.raises(ValueError, match="max_retries"):
            run_parallel(
                make_spec(),
                shards=2,
                processes=2,
                supervise=SuperviseConfig(max_retries=-1),
            )


# -- deterministic backoff --------------------------------------------------


class TestBackoff:
    def test_pure_function_of_seed_shard_attempt(self):
        config = SuperviseConfig(backoff_base_s=0.05)
        first = backoff_delay_s(config, 2018, 3, 2)
        assert backoff_delay_s(config, 2018, 3, 2) == first
        assert backoff_delay_s(config, 2019, 3, 2) != first
        assert backoff_delay_s(config, 2018, 4, 2) != first
        assert backoff_delay_s(config, 2018, 3, 3) != first

    @pytest.mark.parametrize("attempt", [1, 2, 3, 4])
    def test_exponential_envelope_with_bounded_jitter(self, attempt):
        config = SuperviseConfig(backoff_base_s=0.05)
        delay = backoff_delay_s(config, 7, 1, attempt)
        floor = 0.05 * 2.0 ** (attempt - 1)
        assert floor <= delay < 2 * floor  # jitter in [0, 1)

    def test_zero_base_disables_backoff(self):
        config = SuperviseConfig(backoff_base_s=0.0)
        assert backoff_delay_s(config, 7, 1, 3) == 0.0


# -- the deadline boundary --------------------------------------------------


class TestDeadline:
    def test_none_never_expires(self):
        never = deadline.Deadline(None)
        assert not never.expired()
        assert never.remaining_s() is None

    def test_expiry_tracks_the_host_clock(self):
        soon = deadline.Deadline(0.001)
        deadline.sleep(0.005)
        assert soon.expired()
        assert soon.remaining_s() == 0.0
        later = deadline.Deadline(60.0)
        assert not later.expired()
        assert 0.0 < later.remaining_s() <= 60.0

    def test_sleep_ignores_non_positive_durations(self):
        before = deadline.now()
        deadline.sleep(-5.0)
        deadline.sleep(0.0)
        assert deadline.now() - before < 1.0


# -- retry recovery (serial and pool) ---------------------------------------


class TestRetryRecovery:
    def test_serial_crash_retry_is_byte_identical(self):
        spec = make_spec()
        reference = run_single(spec)
        merged = run_parallel(
            spec,
            shards=2,
            processes=1,
            supervise=RETRY,
            fault_plan=FaultPlan.single(1, KIND_CRASH),
        )
        assert dumps(merged) == dumps(reference)
        assert attempt_keys(merged) == [(1, 1, "crash")]
        counts = {
            name: entry["value"]
            for name, entry in merged.failures["metrics"].items()
        }
        assert counts["shard.crashes"] == 1
        assert counts["shard.retries"] == 1
        assert counts["shard.degraded"] == 0
        assert "FaultInjected" in merged.failures["attempts"][0]["detail"]

    def test_serial_corrupt_result_retries(self):
        """A non-CampaignResult out of a shard is a corrupt-result fault,
        never a merged-in value."""
        spec = make_spec()
        merged = run_parallel(
            spec,
            shards=2,
            processes=1,
            supervise=RETRY,
            fault_plan=FaultPlan.single(
                1, KIND_CORRUPT, site=SITE_WORKER_RESULT
            ),
        )
        assert dumps(merged) == dumps(run_single(spec))
        assert attempt_keys(merged) == [(1, 1, "corrupt-result")]

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_pool_crash_retry_is_byte_identical(self):
        spec = make_spec()
        reference = run_single(spec)
        merged = run_parallel(
            spec,
            shards=2,
            processes=2,
            start_method="fork",
            supervise=RETRY,
            fault_plan=FaultPlan.single(1, KIND_CRASH),
        )
        assert dumps(merged) == dumps(reference)
        assert attempt_keys(merged) == [(1, 1, "crash")]

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_pool_corrupt_pickle_retry_is_byte_identical(self):
        """An unpicklable result dies on the pool pipe; the supervisor
        sees the encoding error and re-runs the shard."""
        spec = make_spec()
        merged = run_parallel(
            spec,
            shards=2,
            processes=2,
            start_method="fork",
            supervise=RETRY,
            fault_plan=FaultPlan.single(
                1, KIND_CORRUPT, site=SITE_WORKER_RESULT
            ),
        )
        assert dumps(merged) == dumps(run_single(spec))
        assert attempt_keys(merged) == [(1, 1, "corrupt-result")]

    def test_retries_show_up_in_the_wall_profile(self):
        spec = make_spec()
        prof = WallProfiler()
        merged = run_parallel(
            spec,
            shards=2,
            processes=1,
            profiler=prof,
            supervise=RETRY,
            fault_plan=FaultPlan.single(1, KIND_CRASH),
        )
        assert dumps(merged) == dumps(run_single(spec))
        paths = {row["path"] for row in merged.wall_profile["phases"]}
        assert "parallel/shard.retry" in paths


# -- exhaustion and degradation ---------------------------------------------


class TestExhaustion:
    def test_exhausted_shard_raises_one_structured_failure(self):
        spec = make_spec()
        with pytest.raises(ShardFailure) as excinfo:
            run_parallel(
                spec,
                shards=2,
                processes=1,
                supervise=RETRY,
                fault_plan=FaultPlan.exhaust(1, KIND_CRASH, attempts=2),
            )
        error = excinfo.value
        message = str(error)
        assert "1 shard(s) failed permanently" in message
        assert "shard 1 worker failed permanently" in message
        assert "crash on attempt 2 of 2" in message
        assert len(error.failures) == 1
        entry = error.failures[0]
        assert entry["shard"] == 1
        assert entry["attempts"] == 2
        assert [f["cause"] for f in entry["faults"]] == ["crash", "crash"]

    def test_every_failed_shard_is_collected_before_raising(self):
        """No first-failure masking: one ShardFailure names ALL the
        permanently-failed shards."""
        spec = make_spec()
        plan = FaultPlan(
            (Fault(shard=1, kind=KIND_CRASH), Fault(shard=3, kind=KIND_CRASH))
        )
        with pytest.raises(ShardFailure) as excinfo:
            run_parallel(spec, shards=4, processes=1, fault_plan=plan)
        error = excinfo.value
        assert [entry["shard"] for entry in error.failures] == [1, 3]
        assert "2 shard(s) failed permanently" in str(error)

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_pool_collects_every_failed_shard_too(self):
        spec = make_spec()
        plan = FaultPlan(
            (Fault(shard=0, kind=KIND_CRASH), Fault(shard=2, kind=KIND_CRASH))
        )
        with pytest.raises(ShardFailure) as excinfo:
            run_parallel(
                spec, shards=4, processes=2, start_method="fork",
                fault_plan=plan,
            )
        assert [entry["shard"] for entry in excinfo.value.failures] == [0, 2]

    def test_degrade_serial_reruns_in_parent_byte_identically(self):
        spec = make_spec()
        merged = run_parallel(
            spec,
            shards=2,
            processes=1,
            supervise=SuperviseConfig(
                max_retries=1, backoff_base_s=0.0, degrade="serial"
            ),
            fault_plan=FaultPlan.exhaust(1, KIND_CRASH, attempts=2),
        )
        assert dumps(merged) == dumps(run_single(spec))
        block = merged.failures
        assert block["degraded"] == [1]
        counts = {
            name: entry["value"] for name, entry in block["metrics"].items()
        }
        assert counts == {
            "shard.crashes": 2,
            "shard.corrupt_results": 0,
            "shard.degraded": 1,
            "shard.retries": 1,
            "shard.timeouts": 0,
            "shard.worker_deaths": 0,
        }


# -- the failures block on clean runs ---------------------------------------


class TestCleanRuns:
    def test_clean_parallel_run_reports_explicit_zeros(self):
        spec = make_spec()
        merged = run_parallel(spec, shards=2, processes=1)
        block = merged.failures
        assert block["attempts"] == []
        assert block["degraded"] == []
        assert all(
            entry["value"] == 0 for entry in block["metrics"].values()
        )

    def test_run_single_carries_no_failures_block(self):
        assert run_single(make_spec()).failures is None

    def test_supervised_equals_unsupervised_without_faults(self):
        spec = make_spec()
        plain = run_parallel(spec, shards=2, processes=1)
        supervised = run_parallel(
            spec,
            shards=2,
            processes=1,
            supervise=SuperviseConfig(
                shard_timeout_s=30.0, max_retries=3, degrade="serial"
            ),
        )
        assert dumps(supervised) == dumps(plain)


# -- pool shutdown hygiene --------------------------------------------------


def spy_on_pool(monkeypatch, calls):
    """Wrap the next pool's shutdown methods to record the order."""
    real = parallel_module._make_pool

    def spying(processes, start_method, initializer=None, initargs=()):
        pool = real(
            processes, start_method, initializer=initializer, initargs=initargs
        )
        for name in ("close", "terminate", "join"):
            original = getattr(pool, name)

            def wrapped(_original=original, _name=name):
                calls.append(_name)
                return _original()

            setattr(pool, name, wrapped)
        return pool

    monkeypatch.setattr(parallel_module, "_make_pool", spying)


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
class TestPoolShutdown:
    def test_success_path_closes_and_joins(self, monkeypatch):
        calls = []
        spy_on_pool(monkeypatch, calls)
        spec = make_spec()
        merged = run_parallel(spec, shards=2, processes=2, start_method="fork")
        assert dumps(merged) == dumps(run_single(spec))
        assert calls == ["close", "join"]

    def test_supervisor_crash_terminates(self, monkeypatch):
        calls = []
        spy_on_pool(monkeypatch, calls)

        def broken(*args, **kwargs):
            raise RuntimeError("supervision loop died")

        monkeypatch.setattr(supervise_module, "_pump", broken)
        with pytest.raises(RuntimeError, match="supervision loop died"):
            run_parallel(
                make_spec(), shards=2, processes=2, start_method="fork"
            )
        assert calls == ["terminate", "join"]

    def test_workers_run_exit_finalizers_on_the_success_path(
        self, monkeypatch, tmp_path
    ):
        """The regression satellite: ``terminate()`` kills workers before
        their exit finalizers run, so worker-side cleanup only survives
        a ``close()``/``join()`` shutdown.  A ``mark-exit`` fault
        registers a marker-writing finalizer in one worker; the marker
        must exist once ``run_parallel`` returns."""
        calls = []
        spy_on_pool(monkeypatch, calls)
        spec = make_spec()
        plan = FaultPlan.single(0, KIND_MARK_EXIT, path=str(tmp_path))
        merged = run_parallel(
            spec, shards=2, processes=2, start_method="fork", fault_plan=plan
        )
        assert dumps(merged) == dumps(run_single(spec))
        assert calls == ["close", "join"]
        markers = list(tmp_path.glob("worker-*.exited"))
        assert markers, "worker exit cleanup never ran"
        assert markers[0].read_text() == "clean exit\n"
