"""Tests for the AIMD adaptive-rate prober."""

import pytest

from repro.netsim import Internet, InternetConfig, build_internet
from repro.prober.adaptive import AdaptiveConfig, RateController, run_adaptive_yarrp6
from repro.prober import run_yarrp6


@pytest.fixture(scope="module")
def built():
    return build_internet(InternetConfig(n_edge=40, cpe_customers_per_isp=200, seed=23))


@pytest.fixture(scope="module")
def targets(built):
    out = []
    for subnet in built.truth.subnets.values():
        out.append(subnet.prefix.base | 0x1234)
        if len(out) >= 400:
            break
    return out


class TestRateController:
    def test_halves_on_low_water(self):
        controller = RateController(AdaptiveConfig(initial_pps=1000))
        for _ in range(10):
            controller.on_probe(1)
        for _ in range(3):
            controller.on_response(1)
        assert controller.evaluate(0) == 500

    def test_increases_on_high_water(self):
        controller = RateController(AdaptiveConfig(initial_pps=1000, increase=100))
        for _ in range(10):
            controller.on_probe(2)
            controller.on_response(2)
        assert controller.evaluate(0) == 1100

    def test_holds_between_watermarks(self):
        controller = RateController(
            AdaptiveConfig(initial_pps=1000, low_water=0.5, high_water=0.95)
        )
        for _ in range(10):
            controller.on_probe(1)
        for _ in range(8):
            controller.on_response(1)
        assert controller.evaluate(0) == 1000

    def test_needs_enough_signal(self):
        controller = RateController(AdaptiveConfig(initial_pps=1000))
        controller.on_probe(1)  # one probe: not enough evidence
        assert controller.evaluate(0) == 1000
        assert not controller.history

    def test_floor_and_ceiling(self):
        config = AdaptiveConfig(initial_pps=100, min_pps=80, max_pps=150, increase=100)
        controller = RateController(config)
        for _ in range(10):
            controller.on_probe(1)
        assert controller.evaluate(0) == 80  # floored
        for _ in range(10):
            controller.on_probe(1)
            controller.on_response(1)
        assert controller.evaluate(1) == 150  # capped

    def test_deep_ttls_ignored(self):
        controller = RateController(AdaptiveConfig(near_ttl=3))
        for _ in range(10):
            controller.on_probe(9)
        assert controller.evaluate(0) == controller.config.initial_pps


class TestAdaptiveCampaign:
    def test_backs_off_under_limiting(self, built, targets):
        """Starting far above the premise buckets' rate, the controller
        converges downward and ends below its initial rate."""
        net = Internet(built)
        result, controller = run_adaptive_yarrp6(
            net,
            "US-EDU-1",
            targets,
            AdaptiveConfig(initial_pps=20_000, window_us=100_000),
        )
        assert controller.history, "controller never evaluated"
        final_rate = controller.history[-1][1]
        assert final_rate < 20_000
        assert result.sent == len(targets) * 16

    def test_beats_fixed_overload_rate(self, built, targets):
        """At an overloaded fixed rate, near-hop records are lost; the
        adaptive run recovers most of them."""
        net = Internet(built)
        fixed = run_yarrp6(net, "US-EDU-1", targets, pps=20_000, max_ttl=16)
        net.reset_dynamics()
        adaptive, _ = run_adaptive_yarrp6(
            net,
            "US-EDU-1",
            targets,
            AdaptiveConfig(initial_pps=20_000, window_us=100_000),
        )

        def near_records(result):
            return sum(1 for record in result.records if record.ttl <= 3)

        assert near_records(adaptive) > near_records(fixed) * 1.3
        # The price is wall-clock (virtual) duration.
        assert adaptive.duration_us > fixed.duration_us

    def test_stays_up_when_unconstrained(self, built, targets):
        """With buckets comfortably provisioned, the controller keeps the
        rate at or above its starting point."""
        net = Internet(built)
        result, controller = run_adaptive_yarrp6(
            net,
            "US-EDU-1",
            targets,
            AdaptiveConfig(initial_pps=500, window_us=100_000),
        )
        if controller.history:
            assert controller.history[-1][1] >= 500
