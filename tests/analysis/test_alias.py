"""Tests for speedtrap sampling and fragment-ID alias resolution."""

import pytest

from repro.analysis.alias import (
    AliasParams,
    resolve_aliases,
    score_against_truth,
    sequence_compatible,
    truth_clusters_for,
    _unwrap,
)
from repro.netsim import Internet, InternetConfig, build_internet
from repro.prober.speedtrap import IdSample, Speedtrap, SpeedtrapConfig, run_speedtrap


def samples_from(address, points):
    return [IdSample(address, t, ident, 0) for t, ident in points]


class TestUnwrap:
    def test_plain(self):
        assert _unwrap([5, 6, 9]) == [5, 6, 9]

    def test_wraparound(self):
        values = [(1 << 32) - 2, (1 << 32) - 1, 1, 3]
        unwrapped = _unwrap(values)
        assert unwrapped == sorted(unwrapped)
        assert unwrapped[2] == (1 << 32) + 1


class TestSequenceCompatible:
    def test_shared_counter(self):
        a = samples_from(1, [(0, 100), (1_000_000, 103), (2_000_000, 106)])
        b = samples_from(2, [(500_000, 101), (1_500_000, 104), (2_500_000, 108)])
        assert sequence_compatible(a, b)

    def test_independent_counters(self):
        a = samples_from(1, [(0, 100), (1_000_000, 101)])
        b = samples_from(2, [(500_000, 5_000_000), (1_500_000, 5_000_001)])
        assert not sequence_compatible(a, b)

    def test_duplicate_id_rejected(self):
        a = samples_from(1, [(0, 100)])
        b = samples_from(2, [(10, 100)])
        assert not sequence_compatible(a, b)

    def test_reordered_arrivals_tolerated(self):
        """Replies from different interfaces invert in time by less than
        the jitter bound: still one counter."""
        a = samples_from(1, [(100_000, 101)])
        b = samples_from(2, [(90_000, 102)])  # later ID arrived earlier
        assert sequence_compatible(a, b)

    def test_big_time_inversion_rejected(self):
        a = samples_from(1, [(5_000_000, 101)])
        b = samples_from(2, [(0, 102)])
        assert not sequence_compatible(a, b)

    def test_velocity_bound(self):
        # A jump of 1000 IDs over one second exceeds max_velocity 50.
        a = samples_from(1, [(0, 100), (1_000_000, 1100)])
        b = samples_from(2, [(2_000_000, 1105)])
        assert not sequence_compatible(a, b)

    def test_wraparound_pair(self):
        a = samples_from(1, [(0, (1 << 32) - 2)])
        b = samples_from(2, [(100_000, 1)])
        assert sequence_compatible(a, b)


class TestResolve:
    def test_empty(self):
        assert resolve_aliases({}) == []

    def test_single_address_is_singleton(self):
        samples = {7: samples_from(7, [(0, 1), (1000, 2)])}
        clusters = resolve_aliases(samples)
        assert clusters == [{7}]

    def test_two_aliases_cluster(self):
        samples = {
            1: samples_from(1, [(0, 100), (1_000_000, 102), (2_000_000, 104)]),
            2: samples_from(2, [(500_000, 101), (1_500_000, 103), (2_500_000, 105)]),
            3: samples_from(3, [(0, 9_000_000), (1_000_000, 9_000_002), (2_000_000, 9_000_004)]),
        }
        clusters = {frozenset(c) for c in resolve_aliases(samples)}
        assert frozenset({1, 2}) in clusters
        assert frozenset({3}) in clusters

    def test_random_counter_stays_singleton(self):
        """A responder with random IDs fails self-consistency."""
        samples = {
            9: samples_from(9, [(0, 12345), (1_000_000, 3), (2_000_000, 999_999)]),
        }
        assert resolve_aliases(samples) == [{9}]

    def test_under_sampled_singleton(self):
        samples = {5: samples_from(5, [(0, 1)])}
        assert resolve_aliases(samples, AliasParams(min_samples=2)) == [{5}]


class TestScore:
    def test_perfect(self):
        clusters = [{1, 2}, {3}]
        truth = [{1, 2}, {3}]
        accuracy = score_against_truth(clusters, truth)
        assert accuracy.precision == 1.0
        assert accuracy.recall == 1.0

    def test_false_merge(self):
        accuracy = score_against_truth([{1, 2, 3}], [{1, 2}, {3}])
        assert accuracy.precision == pytest.approx(1 / 3)
        assert accuracy.recall == 1.0

    def test_missed_pair(self):
        accuracy = score_against_truth([{1}, {2}], [{1, 2}])
        assert accuracy.inferred_pairs == 0
        assert accuracy.recall == 0.0
        assert accuracy.precision == 1.0

    def test_truth_restricted_to_probed(self):
        # Address 4 was never probed: its pairs don't count against recall.
        accuracy = score_against_truth([{1, 2}], [{1, 2, 4}])
        assert accuracy.recall == 1.0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def world(self):
        return build_internet(InternetConfig(n_edge=30, cpe_customers_per_isp=150, seed=9))

    def test_speedtrap_requires_candidates(self):
        with pytest.raises(ValueError):
            Speedtrap(1, [])

    def test_resolution_accuracy(self, world):
        net = Internet(world)
        candidates = []
        for router in world.truth.routers.values():
            if len(router.interfaces) >= 2:
                candidates.extend(router.interfaces[:2])
            if len(candidates) >= 80:
                break
        machine = run_speedtrap(net, "US-EDU-1", candidates)
        clusters = resolve_aliases(machine.samples)
        truth = truth_clusters_for(candidates, world.truth.router_addresses)
        accuracy = score_against_truth(clusters, truth)
        assert accuracy.precision > 0.95
        assert accuracy.recall > 0.8

    def test_no_samples_without_lure(self, world):
        """Echo replies carry no fragment header unless a PTB planted the
        atomic state first — sampling without the lure yields nothing."""
        net = Internet(world)
        net.reset_dynamics()  # clear atomic state other tests planted
        candidates = []
        for router in world.truth.routers.values():
            if len(router.interfaces) >= 2:
                candidates.extend(router.interfaces[:2])
                break
        machine = Speedtrap(net.vantage("US-EDU-1").address, candidates)
        for candidate in candidates:
            packet = machine.sample_packet(candidate, 0)
            response = net.probe(packet, 0)
            if response is not None:
                assert machine.receive(response.data, 0, 0) is None
        assert not machine.samples

    def test_hosts_never_fragment(self, world):
        """PTB toward an end host plants nothing (hosts aren't modeled as
        alias-resolvable responders)."""
        net = Internet(world)
        host = None
        for subnet in world.truth.subnets.values():
            if subnet.host_iids:
                host = subnet.host_addresses()[0]
                break
        machine = Speedtrap(net.vantage("US-EDU-1").address, [host])
        net.probe(machine.lure_packet(host), 0)
        response = net.probe(machine.sample_packet(host, 0), 10)
        if response is not None:
            assert machine.receive(response.data, 10, 0) is None
