"""Tests for multi-vantage marginal-gain analysis."""

from repro.analysis.vantages import (
    best_order,
    interfaces_by_vantage,
    marginal_gain,
    overlap_matrix,
)
from repro.prober.campaign import CampaignResult


def campaign(vantage, interfaces):
    return CampaignResult(
        name=vantage,
        vantage=vantage,
        prober="yarrp6",
        pps=1,
        targets=0,
        sent=0,
        records=[],
        interfaces=set(interfaces),
        curve=[],
        response_labels={},
        summary={},
        duration_us=0,
    )


class TestMarginalGain:
    def test_ordered(self):
        rows = marginal_gain([("a", {1, 2}), ("b", {2, 3}), ("c", {1})])
        assert rows == [("a", 2, 2), ("b", 1, 3), ("c", 0, 3)]

    def test_empty(self):
        assert marginal_gain([]) == []


class TestBestOrder:
    def test_greedy(self):
        rows = best_order({"small": {1}, "big": {1, 2, 3}, "mid": {3, 4}})
        assert rows[0][0] == "big"
        assert rows[0][1] == 3
        # "mid" adds 1 (the 4), "small" adds 0.
        assert rows[1] == ("mid", 1, 4)
        assert rows[2] == ("small", 0, 4)

    def test_cumulative_equals_union(self):
        sets = {"a": {1, 2}, "b": {2, 3}, "c": {4}}
        rows = best_order(sets)
        assert rows[-1][2] == len({1, 2, 3, 4})


class TestOverlap:
    def test_jaccard(self):
        matrix = overlap_matrix({"a": {1, 2}, "b": {2, 3}})
        assert matrix[("a", "b")] == 1 / 3

    def test_disjoint(self):
        matrix = overlap_matrix({"a": {1}, "b": {2}})
        assert matrix[("a", "b")] == 0.0

    def test_empty_sets(self):
        matrix = overlap_matrix({"a": set(), "b": set()})
        assert matrix[("a", "b")] == 1.0


def test_interfaces_by_vantage():
    grouped = interfaces_by_vantage(
        [campaign("x", {1}), campaign("x", {2}), campaign("y", {3})]
    )
    assert grouped == {"x": {1, 2}, "y": {3}}
