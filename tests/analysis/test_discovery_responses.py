"""Tests for discovery metrics, response mixes, and reporting, driven by
real (small) campaigns against the simulated internet."""

import pytest

from repro.addrs import IIDClass, classify_address, make_eui64_iid, parse
from repro.analysis.discovery import (
    discovery_curve,
    eui64_path_offsets,
    eui64_share,
    exclusive_interfaces,
    offset_summary,
    oui_concentration,
    percentile,
)
from repro.analysis.report import (
    format_count,
    format_fraction,
    render_cdf,
    render_series,
    render_table,
)
from repro.analysis.responses import (
    other_icmp_count,
    other_icmp_rate,
    per_hop_responsiveness,
    protocol_comparison,
    response_mix,
    transformation_table,
)
from repro.analysis.targetsets import characterize_results, combined_interfaces
from repro.netsim import Internet, InternetConfig, build_internet
from repro.prober import run_yarrp6


@pytest.fixture(scope="module")
def built():
    return build_internet(InternetConfig(n_edge=40, cpe_customers_per_isp=300, seed=31))


@pytest.fixture(scope="module")
def cpe_campaign(built):
    net = Internet(built)
    targets = []
    for asn in built.cpe_asns:
        for subnet in built.truth.ases[asn].plan.leaves[:120]:
            targets.append(subnet.prefix.base | 0x1234_5678_1234_5678)
    return run_yarrp6(net, "US-EDU-1", targets, pps=800, max_ttl=16)


@pytest.fixture(scope="module")
def edge_campaign(built):
    net = Internet(built)
    targets = []
    for asn in built.edge_asns:
        for subnet in built.truth.ases[asn].plan.leaves[:3]:
            targets.append(subnet.prefix.base | 0x1234_5678_1234_5678)
    return run_yarrp6(net, "US-EDU-1", targets, pps=800, max_ttl=16)


class TestDiscoveryCurve:
    def test_downsample_preserves_endpoints(self, cpe_campaign):
        curve = discovery_curve(cpe_campaign, points=10)
        assert curve[0] == cpe_campaign.curve[0]
        assert curve[-1] == cpe_campaign.curve[-1]
        assert len(curve) <= 12

    def test_monotone(self, cpe_campaign):
        curve = discovery_curve(cpe_campaign, points=20)
        xs = [x for x, _ in curve]
        ys = [y for _, y in curve]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    def test_empty_curve(self, built):
        from repro.prober.campaign import CampaignResult

        empty = CampaignResult(
            name="x", vantage="v", prober="yarrp6", pps=1, targets=0, sent=0,
            records=[], interfaces=set(), curve=[], response_labels={},
            summary={}, duration_us=0,
        )
        assert discovery_curve(empty) == []


class TestEui64Analysis:
    def test_cpe_campaign_eui64_heavy(self, cpe_campaign, edge_campaign):
        """Targets in CPE ISP space surface EUI-64 routers; edge targets
        mostly don't (the Table 7 contrast)."""
        assert eui64_share(cpe_campaign.interfaces) > eui64_share(
            edge_campaign.interfaces
        )

    def test_offsets_mostly_last_hop(self, cpe_campaign):
        """CPE EUI-64 interfaces sit at the end of their paths."""
        offsets = eui64_path_offsets(cpe_campaign)
        assert offsets
        p5, median = offset_summary(offsets)
        assert median == 0
        assert p5 <= 0

    def test_oui_concentration(self, cpe_campaign):
        """Each CPE ISP fields a single vendor: the top-2 OUI share of
        EUI-64 interfaces is overwhelming."""
        assert oui_concentration(cpe_campaign.interfaces, top=2) > 0.9

    def test_percentile(self):
        assert percentile([1, 2, 3, 4], 0.5) == 2
        assert percentile([], 0.5) == 0.0
        assert percentile([5], 0.05) == 5


class TestExclusivity:
    def test_exclusive_interfaces(self, cpe_campaign, edge_campaign):
        exclusives = exclusive_interfaces(
            {"cpe": cpe_campaign, "edge": edge_campaign}
        )
        shared = cpe_campaign.interfaces & edge_campaign.interfaces
        assert exclusives["cpe"] == cpe_campaign.interfaces - shared
        assert exclusives["edge"] == edge_campaign.interfaces - shared

    def test_characterize_results(self, built, cpe_campaign, edge_campaign):
        features = characterize_results(
            {"cpe": cpe_campaign, "edge": edge_campaign}, built.truth.registry
        )
        assert features["cpe"].asns
        assert features["cpe"].exclusive_asns <= features["cpe"].asns
        for prefix in features["edge"].exclusive_prefixes:
            assert prefix not in features["cpe"].bgp_prefixes

    def test_combined_interfaces(self, cpe_campaign, edge_campaign):
        union = combined_interfaces([cpe_campaign, edge_campaign])
        assert union == cpe_campaign.interfaces | edge_campaign.interfaces


class TestResponses:
    def test_mix_sums_to_one(self, cpe_campaign):
        mix = response_mix(cpe_campaign)
        assert abs(sum(mix.values()) - 1.0) < 1e-9
        assert mix.get("time exceeded", 0) > 0.5

    def test_other_icmp(self, edge_campaign):
        count = other_icmp_count(edge_campaign)
        rate = other_icmp_rate(edge_campaign)
        assert count >= 0
        assert 0 <= rate <= 1

    def test_transformation_table_rows(self, cpe_campaign, edge_campaign):
        rows = transformation_table({48: edge_campaign, 64: cpe_campaign})
        assert [row["zn"] for row in rows] == [48, 64]
        for row in rows:
            assert row["excl_addrs"] <= row["addrs"]

    def test_protocol_comparison_keys(self, cpe_campaign):
        comparison = protocol_comparison({"icmp6": cpe_campaign})
        assert comparison["icmp6"]["interfaces"] == len(cpe_campaign.interfaces)

    def test_per_hop_responsiveness(self, cpe_campaign):
        series = per_hop_responsiveness(cpe_campaign, 16)
        assert len(series) == 16
        assert all(0.0 <= fraction <= 1.0 for _, fraction in series)
        # Near hops respond for almost all traces at this gentle rate.
        assert series[0][1] > 0.9


class TestReport:
    def test_format_count(self):
        assert format_count(1_340_000) == "1.3M"
        assert format_count(45_500) == "45.5k"
        assert format_count(12) == "12"
        assert format_count(3.25) == "3.25"

    def test_format_fraction(self):
        assert format_fraction(0.981) == "98.1%"

    def test_render_table(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_series(self):
        text = render_series("s", [(1, 2.0)], "x", "y")
        assert "s" in text and "1" in text

    def test_render_cdf(self):
        text = render_cdf({"a": [(24, 0.0), (64, 1.0)]}, "dpl")
        assert "0.000" in text and "1.000" in text
