"""Tests for interface- and router-level graph construction."""

import networkx as nx

from repro.addrs import parse
from repro.analysis.graph import (
    edge_accuracy,
    graph_summary,
    interface_graph,
    router_graph,
)
from repro.analysis.traces import Trace
from repro.packet import icmpv6
from repro.prober.records import ProbeRecord

A = parse("2001:db8::a")
B = parse("2001:db8::b")
C = parse("2001:db8::c")
D = parse("2001:db8::d")


def trace_of(target, hops):
    trace = Trace(target)
    for ttl, hop in enumerate(hops, start=1):
        if hop is not None:
            trace.add(
                ProbeRecord(target, ttl, hop, icmpv6.TYPE_TIME_EXCEEDED, 0, "time exceeded", 1, 1)
            )
    return trace


class TestInterfaceGraph:
    def test_consecutive_hops_linked(self):
        traces = {1: trace_of(1, [A, B, C])}
        graph = interface_graph(traces)
        assert graph.has_edge(A, B)
        assert graph.has_edge(B, C)
        assert not graph.has_edge(A, C)

    def test_gap_breaks_link_by_default(self):
        traces = {1: trace_of(1, [A, None, C])}
        graph = interface_graph(traces)
        assert not graph.has_edge(A, C)
        assert A in graph.nodes and C in graph.nodes

    def test_gap_bridged_when_allowed(self):
        traces = {1: trace_of(1, [A, None, C])}
        graph = interface_graph(traces, allow_gaps=True)
        assert graph.has_edge(A, C)
        assert graph[A][C]["inferred"]

    def test_shared_hops_merge(self):
        traces = {
            1: trace_of(1, [A, B, C]),
            2: trace_of(2, [A, B, D]),
        }
        graph = interface_graph(traces)
        assert graph.degree[B] == 3  # A, C, D

    def test_asn_annotation(self):
        from repro.addrs.prefix import Prefix
        from repro.addrs.trie import PrefixTrie

        registry = PrefixTrie()
        registry.insert(Prefix.parse("2001:db8::/32"), 64500)
        graph = interface_graph({1: trace_of(1, [A, B])}, registry=registry)
        assert graph.nodes[A]["asn"] == 64500


class TestRouterGraph:
    def test_aliases_collapse(self):
        interfaces = interface_graph({1: trace_of(1, [A, B, C])})
        routers = router_graph(interfaces, [{B, C}])
        assert routers.number_of_nodes() == 2
        merged = min(B, C)
        assert routers.has_edge(A, merged)
        assert routers.nodes[merged]["interfaces"] == {B, C}

    def test_intra_router_edge_dropped(self):
        interfaces = nx.Graph()
        interfaces.add_edge(B, C)
        routers = router_graph(interfaces, [{B, C}])
        assert routers.number_of_edges() == 0

    def test_parallel_links_weighted(self):
        interfaces = nx.Graph()
        interfaces.add_edge(A, B)
        interfaces.add_edge(A, C)
        routers = router_graph(interfaces, [{B, C}])
        merged = min(B, C)
        assert routers[A][merged]["weight"] == 2

    def test_singletons_pass_through(self):
        interfaces = interface_graph({1: trace_of(1, [A, B])})
        routers = router_graph(interfaces, [])
        assert set(routers.nodes) == {A, B}


class TestSummaryAccuracy:
    def test_summary(self):
        graph = interface_graph({1: trace_of(1, [A, B, C])})
        summary = graph_summary(graph)
        assert summary["nodes"] == 3
        assert summary["edges"] == 2
        assert summary["components"] == 1
        assert summary["max_degree"] == 2

    def test_summary_empty(self):
        assert graph_summary(nx.Graph())["nodes"] == 0

    def test_edge_accuracy(self):
        graph = interface_graph({1: trace_of(1, [A, B, C])})
        truth = {(min(A, B), max(A, B))}
        fraction, checked = edge_accuracy(graph, truth)
        assert checked == 2
        assert fraction == 0.5

    def test_edge_accuracy_skips_inferred(self):
        graph = interface_graph({1: trace_of(1, [A, None, C])}, allow_gaps=True)
        fraction, checked = edge_accuracy(graph, set())
        assert checked == 0
        assert fraction == 1.0
