"""Tests for ITDK-style dataset export/import."""

import io

import networkx as nx
import pytest

from repro.addrs import parse
from repro.analysis.datasets import (
    DatasetError,
    export_router_level,
    load_router_level,
    read_links,
    read_nodes,
    write_links,
    write_nodes,
)

A = parse("2001:db8::a")
B = parse("2001:db8::b")
C = parse("2001:db8::c")
D = parse("2001:db8::d")


def router_graph_fixture():
    graph = nx.Graph()
    rep_ab = min(A, B)
    graph.add_node(rep_ab, interfaces={A, B})
    graph.add_node(C, interfaces={C})
    graph.add_edge(rep_ab, C, weight=1)
    return graph, [[A, B], [C]]


class TestWrite:
    def test_nodes_format(self):
        buffer = io.StringIO()
        mapping = write_nodes(buffer, [[A, B], [C]])
        text = buffer.getvalue()
        assert "node N1:" in text and "node N2:" in text
        assert mapping[A] == mapping[B]
        assert mapping[C] != mapping[A]

    def test_links_format(self):
        graph, clusters = router_graph_fixture()
        nodes_buffer = io.StringIO()
        mapping = write_nodes(nodes_buffer, clusters)
        links_buffer = io.StringIO()
        written = write_links(links_buffer, graph, mapping)
        assert written == 1
        assert "link L1:" in links_buffer.getvalue()


class TestRead:
    def test_round_trip(self):
        graph, clusters = router_graph_fixture()
        nodes_text, links_text = export_router_level(clusters, graph)
        restored = load_router_level(nodes_text, links_text)
        assert restored.number_of_nodes() == 2
        assert restored.number_of_edges() == 1
        all_interfaces = set()
        for _, data in restored.nodes(data=True):
            all_interfaces |= data["interfaces"]
        assert all_interfaces == {A, B, C}

    def test_read_nodes_rejects_garbage(self):
        with pytest.raises(DatasetError):
            read_nodes(io.StringIO("nonsense line\n"))

    def test_read_nodes_rejects_empty_node(self):
        with pytest.raises(DatasetError):
            read_nodes(io.StringIO("node N1:  \n"))

    def test_read_links_rejects_one_endpoint(self):
        with pytest.raises(DatasetError):
            read_links(io.StringIO("link L1:  N1:2001:db8::a\n"))

    def test_load_rejects_unknown_node(self):
        nodes_text = "node N1:  2001:db8::a\n"
        links_text = "link L1:  N1:2001:db8::a N9:2001:db8::b\n"
        with pytest.raises(DatasetError):
            load_router_level(nodes_text, links_text)

    def test_comments_and_blanks_skipped(self):
        nodes = read_nodes(io.StringIO("# header\n\nnode N1:  ::1\n"))
        assert nodes == {"N1": [1]}


class TestEndToEnd:
    def test_with_real_resolution(self):
        """Full pipeline: netsim -> speedtrap -> clusters -> export -> load."""
        from repro.analysis import resolve_aliases, router_graph
        from repro.analysis.graph import interface_graph
        from repro.analysis.traces import build_traces
        from repro.netsim import Internet, InternetConfig
        from repro.prober import run_speedtrap, run_yarrp6

        net = Internet(
            config=InternetConfig(n_edge=15, cpe_customers_per_isp=60, seed=3)
        )
        targets = [
            subnet.prefix.base | 1 for subnet in list(net.truth.subnets.values())[:60]
        ]
        campaign = run_yarrp6(net, "US-EDU-1", targets, pps=500, max_ttl=16)
        net.reset_dynamics()
        machine = run_speedtrap(net, "US-EDU-1", sorted(campaign.interfaces))
        clusters = resolve_aliases(machine.samples)
        interfaces = interface_graph(build_traces(campaign.records))
        routers = router_graph(interfaces, clusters)
        nodes_text, links_text = export_router_level(clusters, routers)
        restored = load_router_level(nodes_text, links_text)
        assert restored.number_of_nodes() == routers.number_of_nodes()
        assert restored.number_of_edges() == routers.number_of_edges()
