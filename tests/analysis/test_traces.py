"""Tests for trace reconstruction."""

from repro.addrs import parse
from repro.analysis.traces import Trace, build_traces, path_length_stats, reach_fraction
from repro.packet import icmpv6
from repro.prober.records import ProbeRecord


def te_record(target, ttl, hop):
    return ProbeRecord(
        target=target,
        ttl=ttl,
        hop=hop,
        icmp_type=icmpv6.TYPE_TIME_EXCEEDED,
        icmp_code=0,
        label="time exceeded",
        rtt_us=1000,
        received_at=ttl * 10,
    )


def echo_record(target, ttl):
    return ProbeRecord(
        target=target,
        ttl=ttl,
        hop=target,
        icmp_type=icmpv6.TYPE_ECHO_REPLY,
        icmp_code=0,
        label="echo reply",
        rtt_us=1000,
        received_at=ttl * 10,
    )


TARGET = parse("2001:db8:1:2::1")
HOP_A = parse("2001:db8::a")
HOP_B = parse("2001:db8::b")


class TestTrace:
    def test_hops_assembled_out_of_order(self):
        trace = Trace(TARGET)
        trace.add(te_record(TARGET, 3, HOP_B))
        trace.add(te_record(TARGET, 1, HOP_A))
        assert trace.path == [HOP_A, None, HOP_B]
        assert trace.path_length == 3
        assert not trace.complete

    def test_complete_path(self):
        trace = Trace(TARGET)
        trace.add(te_record(TARGET, 1, HOP_A))
        trace.add(te_record(TARGET, 2, HOP_B))
        assert trace.complete

    def test_duplicate_ttl_keeps_first(self):
        trace = Trace(TARGET)
        trace.add(te_record(TARGET, 1, HOP_A))
        trace.add(te_record(TARGET, 1, HOP_B))
        assert trace.hops[1] == HOP_A

    def test_terminal_recorded(self):
        trace = Trace(TARGET)
        trace.add(echo_record(TARGET, 9))
        assert trace.terminal_label == "echo reply"
        assert trace.terminal_hop == TARGET
        assert trace.reached

    def test_reached_via_ia_hack(self):
        trace = Trace(TARGET)
        gateway = (TARGET & ~((1 << 64) - 1)) | 1  # ::1 in the target /64
        trace.add(te_record(TARGET, 5, HOP_A))
        trace.add(te_record(TARGET, 6, gateway))
        assert trace.reached

    def test_not_reached(self):
        trace = Trace(TARGET)
        trace.add(te_record(TARGET, 5, HOP_A))
        assert not trace.reached

    def test_empty_trace(self):
        trace = Trace(TARGET)
        assert trace.path == []
        assert trace.last_hop is None
        assert trace.path_length == 0


class TestBuildTraces:
    def test_groups_by_target(self):
        other = parse("2001:db8:9::1")
        records = [
            te_record(TARGET, 1, HOP_A),
            te_record(other, 1, HOP_A),
            te_record(TARGET, 2, HOP_B),
        ]
        traces = build_traces(records)
        assert set(traces) == {TARGET, other}
        assert traces[TARGET].path_length == 2
        assert traces[other].path_length == 1


class TestStats:
    def test_path_length_stats(self):
        traces = []
        for length in (4, 8, 12):
            trace = Trace(TARGET + length)
            for ttl in range(1, length + 1):
                trace.add(te_record(TARGET + length, ttl, HOP_A + ttl))
            traces.append(trace)
        median, mean, p95 = path_length_stats(traces)
        assert median == 8
        assert mean == 8.0
        assert p95 == 12

    def test_stats_empty(self):
        assert path_length_stats([]) == (0, 0.0, 0)

    def test_reach_fraction(self):
        reached = Trace(TARGET)
        reached.add(echo_record(TARGET, 5))
        unreached = Trace(TARGET + 1)
        unreached.add(te_record(TARGET + 1, 3, HOP_A))
        assert reach_fraction([reached, unreached]) == 0.5

    def test_reach_fraction_empty(self):
        assert reach_fraction([]) == 0.0
