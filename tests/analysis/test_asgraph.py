"""Tests for AS-level graph analytics."""

import pytest

from repro.addrs.prefix import Prefix
from repro.addrs.trie import PrefixTrie
from repro.analysis.asgraph import (
    as_level_graph,
    as_path,
    k_core_summary,
    path_asn_lengths,
    transit_dominance,
)
from repro.analysis.subnets import AsnResolver
from repro.analysis.traces import Trace, build_traces
from repro.packet import icmpv6
from repro.prober.records import ProbeRecord


def resolver_for(blocks):
    trie = PrefixTrie()
    for text, asn in blocks:
        trie.insert(Prefix.parse(text), asn)
    return AsnResolver(trie)


def trace_of(target, hops):
    trace = Trace(target)
    for ttl, hop in enumerate(hops, start=1):
        if hop is not None:
            trace.add(
                ProbeRecord(target, ttl, hop, icmpv6.TYPE_TIME_EXCEEDED, 0, "te", 1, 1)
            )
    return trace


RESOLVER = resolver_for(
    [("2001:100::/32", 100), ("2001:200::/32", 200), ("2001:300::/32", 300)]
)

A1 = Prefix.parse("2001:100::/32").base | 1
A2 = Prefix.parse("2001:100::/32").base | 2
B1 = Prefix.parse("2001:200::/32").base | 1
C1 = Prefix.parse("2001:300::/32").base | 1


class TestAsPath:
    def test_collapses_duplicates(self):
        trace = trace_of(C1, [A1, A2, B1, C1])
        assert as_path(trace, RESOLVER) == [100, 200, 300]

    def test_skips_unattributable(self):
        stray = Prefix.parse("fd00::/8").base | 1
        trace = trace_of(C1, [A1, stray, B1])
        assert as_path(trace, RESOLVER) == [100, 200]

    def test_skips_gaps(self):
        trace = trace_of(C1, [A1, None, B1])
        assert as_path(trace, RESOLVER) == [100, 200]


class TestGraph:
    def test_edges_between_consecutive_asns(self):
        traces = {1: trace_of(C1, [A1, B1, C1])}
        graph = as_level_graph(traces, RESOLVER)
        assert graph.has_edge(100, 200)
        assert graph.has_edge(200, 300)
        assert not graph.has_edge(100, 300)

    def test_edge_weights_accumulate(self):
        traces = {
            1: trace_of(C1, [A1, B1]),
            2: trace_of(C1 + 1, [A2, B1]),
        }
        graph = as_level_graph(traces, RESOLVER)
        assert graph[100][200]["weight"] == 2

    def test_k_core_empty(self):
        import networkx as nx

        assert k_core_summary(nx.Graph())["max_k"] == 0

    def test_k_core_triangle(self):
        import networkx as nx

        graph = nx.complete_graph(4)
        summary = k_core_summary(graph)
        assert summary["max_k"] == 3
        assert summary["core_size"] == 4


class TestDominance:
    def test_transit_fraction(self):
        traces = {
            1: trace_of(C1, [A1, B1, C1]),
            2: trace_of(C1 + 1, [A1, C1]),
        }
        ranked = dict(transit_dominance(traces, RESOLVER))
        # AS 100 (the vantage side) is on both paths' non-terminal part.
        assert ranked[100] == 1.0
        # AS 200 transits only the first.
        assert ranked[200] == 0.5
        # Terminal ASes don't count as transit.
        assert 300 not in ranked

    def test_empty(self):
        assert transit_dominance({}, RESOLVER) == []


class TestIntegration:
    def test_tier1s_dominate_netsim_paths(self):
        """In the generated internet, the backbone ASes transit the bulk
        of AS paths and the k-core is small and dense — the Czyz and
        Dhamdhere readings."""
        from repro.netsim import Internet, InternetConfig
        from repro.prober import run_yarrp6

        net = Internet(
            config=InternetConfig(n_edge=50, cpe_customers_per_isp=150, seed=59)
        )
        targets = [
            subnet.prefix.base | 1
            for subnet in list(net.truth.subnets.values())[:600]
        ]
        campaign = run_yarrp6(net, "US-EDU-1", targets, pps=1000, max_ttl=16)
        resolver = AsnResolver(net.truth.registry, net.truth.equivalent_asns)
        traces = build_traces(campaign.records)
        graph = as_level_graph(traces, resolver)
        assert graph.number_of_nodes() >= 15

        ranked = transit_dominance(traces, resolver)
        top_asn, top_fraction = ranked[0]
        tiers = {asn: asys.tier for asn, asys in net.truth.ases.items()}
        # The most dominant transit is backbone or regional, on a large
        # share of paths (the Hurricane Electric phenomenon).
        assert tiers[top_asn] <= 2
        assert top_fraction > 0.3

        summary = k_core_summary(graph)
        assert summary["max_k"] >= 2
        assert summary["core_size"] < graph.number_of_nodes() * 0.6

        lengths = path_asn_lengths(traces, resolver)
        assert lengths and max(lengths) >= 3
