"""Tests for path-divergence subnet inference and the IA hack."""

import pytest

from repro.addrs import parse
from repro.addrs.prefix import Prefix
from repro.addrs.trie import PrefixTrie
from repro.analysis.subnets import (
    AsnResolver,
    PathDivParams,
    discover_by_path_div,
    stratified_sample,
    validate_candidates,
)
from repro.analysis.traces import Trace
from repro.packet import icmpv6
from repro.prober.records import ProbeRecord

VANTAGE_ASN = 100
TARGET_ASN = 200

# A toy topology: shared premise hops, then divergence inside AS 200.
VP_HOP1 = parse("2001:100::1")
VP_HOP2 = parse("2001:100::2")
AS200_CORE = parse("2001:200::1")
AS200_DIST = parse("2001:200::2")
AS200_GW_A = parse("2001:200:0:a::1")
AS200_GW_B = parse("2001:200:0:b::1")

TARGET_A = parse("2001:200:0:a::1234")
TARGET_B = parse("2001:200:0:b::1234")


def registry():
    trie = PrefixTrie()
    trie.insert(Prefix.parse("2001:100::/32"), VANTAGE_ASN)
    trie.insert(Prefix.parse("2001:200::/32"), TARGET_ASN)
    return trie


def te(target, ttl, hop):
    return ProbeRecord(target, ttl, hop, icmpv6.TYPE_TIME_EXCEEDED, 0, "time exceeded", 100, 1)


def trace_of(target, hops):
    trace = Trace(target)
    for ttl, hop in enumerate(hops, start=1):
        if hop is not None:
            trace.add(te(target, ttl, hop))
    return trace


def diverging_pair():
    common = [VP_HOP1, VP_HOP2, AS200_CORE, AS200_DIST]
    trace_a = trace_of(TARGET_A, common + [AS200_GW_A])
    trace_b = trace_of(TARGET_B, common + [AS200_GW_B])
    return {TARGET_A: trace_a, TARGET_B: trace_b}


class TestPathDivergence:
    def test_divergence_yields_bound(self):
        resolver = AsnResolver(registry())
        candidates = discover_by_path_div(
            diverging_pair(), resolver, vantage_asn=VANTAGE_ASN
        )
        assert candidates.pairs_divergent == 1
        # Targets differ first within bits 48..64 (0:a vs 0:b) -> DPL 64
        # capped; both targets get the bound.
        assert candidates.bounds[TARGET_A] == 64
        assert candidates.bounds[TARGET_B] == 64
        assert len(candidates.candidate_prefixes) == 2

    def test_no_divergence_no_candidates(self):
        """Identical suffixes (same last-hop router) prove nothing."""
        common = [VP_HOP1, VP_HOP2, AS200_CORE, AS200_DIST, AS200_GW_A]
        traces = {
            TARGET_A: trace_of(TARGET_A, common),
            TARGET_B: trace_of(TARGET_B, common),
        }
        resolver = AsnResolver(registry())
        candidates = discover_by_path_div(traces, resolver, VANTAGE_ASN)
        assert not candidates.bounds

    def test_lcs_too_short_rejected(self):
        """Divergence at the very first hop carries no significance."""
        trace_a = trace_of(TARGET_A, [VP_HOP1, AS200_GW_A])
        trace_b = trace_of(TARGET_B, [VP_HOP2, AS200_GW_B])
        resolver = AsnResolver(registry())
        candidates = discover_by_path_div(
            {TARGET_A: trace_a, TARGET_B: trace_b}, resolver, VANTAGE_ASN
        )
        assert not candidates.bounds

    def test_missing_hop_in_lcs_rejected(self):
        common = [VP_HOP1, None, AS200_CORE, AS200_DIST]
        trace_a = trace_of(TARGET_A, common + [AS200_GW_A])
        trace_b = trace_of(TARGET_B, common + [AS200_GW_B])
        resolver = AsnResolver(registry())
        params = PathDivParams(c=4)  # would need the full common prefix
        candidates = discover_by_path_div(
            {TARGET_A: trace_a, TARGET_B: trace_b}, resolver, VANTAGE_ASN, params
        )
        assert not candidates.bounds

    def test_lcs_must_touch_target_asn(self):
        """Divergence before reaching the target's network (e.g. transit
        traffic engineering) is rejected by the C parameter."""
        # Common part entirely in the vantage AS.
        common = [VP_HOP1, VP_HOP2]
        trace_a = trace_of(TARGET_A, common + [AS200_CORE, AS200_GW_A])
        trace_b = trace_of(TARGET_B, common + [AS200_DIST, AS200_GW_B])
        resolver = AsnResolver(registry())
        candidates = discover_by_path_div(
            {TARGET_A: trace_a, TARGET_B: trace_b}, resolver, VANTAGE_ASN
        )
        assert not candidates.bounds

    def test_different_target_asn_rejected(self):
        other_target = parse("2001:300::1")
        traces = diverging_pair()
        trace_c = trace_of(other_target, [VP_HOP1, VP_HOP2, AS200_CORE, AS200_GW_B])
        traces[other_target] = trace_c
        resolver = AsnResolver(registry())
        candidates = discover_by_path_div(traces, resolver, VANTAGE_ASN)
        # Only the A/B pair can match (C has no registry entry / ASN).
        assert set(candidates.bounds) <= {TARGET_A, TARGET_B}

    def test_equivalent_asns_fold(self):
        """Router space registered to a sibling infrastructure ASN still
        counts as the target's network after folding."""
        trie = PrefixTrie()
        trie.insert(Prefix.parse("2001:100::/32"), VANTAGE_ASN)
        trie.insert(Prefix.parse("2001:200::/32"), TARGET_ASN)
        # The interior routers' space is registered to sibling ASN 201.
        trie.insert(Prefix.parse("2001:201::/32"), 201)
        sibling_core = parse("2001:201::1")
        sibling_dist = parse("2001:201::2")
        common = [VP_HOP1, VP_HOP2, sibling_core, sibling_dist]
        traces = {
            TARGET_A: trace_of(TARGET_A, common + [sibling_core + 0x10]),
            TARGET_B: trace_of(TARGET_B, common + [sibling_dist + 0x10]),
        }
        resolver_plain = AsnResolver(trie)
        resolver_folded = AsnResolver(trie, {201: TARGET_ASN})
        rejected = discover_by_path_div(traces, resolver_plain, VANTAGE_ASN)
        accepted = discover_by_path_div(traces, resolver_folded, VANTAGE_ASN)
        assert not rejected.bounds
        assert accepted.bounds

    def test_unrouted_target_skipped(self):
        traces = diverging_pair()
        resolver = AsnResolver(PrefixTrie())  # empty registry
        candidates = discover_by_path_div(traces, resolver, VANTAGE_ASN)
        assert not candidates.bounds


class TestIAHack:
    def test_gateway_in_target_64(self):
        gateway = (TARGET_A & ~((1 << 64) - 1)) | 1
        trace = trace_of(TARGET_A, [VP_HOP1, VP_HOP2, gateway])
        resolver = AsnResolver(registry())
        candidates = discover_by_path_div({TARGET_A: trace}, resolver, VANTAGE_ASN)
        assert candidates.same64_last_hop == 1
        assert Prefix(TARGET_A & ~((1 << 64) - 1), 64) in candidates.ia_subnets

    def test_non_lowbyte_same64_counts_loosely(self):
        """EUI-64 CPE in the target /64 counts for the 64-dots but not the
        strict IA set."""
        cpe = (TARGET_A & ~((1 << 64) - 1)) | 0x0211_22FF_FE33_4455
        trace = trace_of(TARGET_A, [VP_HOP1, VP_HOP2, cpe])
        resolver = AsnResolver(registry())
        candidates = discover_by_path_div({TARGET_A: trace}, resolver, VANTAGE_ASN)
        assert candidates.same64_last_hop == 1
        assert not candidates.ia_subnets


class TestHistogramCdf:
    def test_histogram_and_cdf(self):
        resolver = AsnResolver(registry())
        candidates = discover_by_path_div(diverging_pair(), resolver, VANTAGE_ASN)
        histogram = candidates.length_histogram()
        assert histogram == {64: 2}
        cdf = dict(candidates.length_cdf([48, 64]))
        assert cdf[48] == 0.0
        assert cdf[64] == 1.0

    def test_cdf_empty(self):
        from repro.analysis.subnets import SubnetCandidates

        assert SubnetCandidates().length_cdf([64]) == [(64, 0.0)]


class TestValidation:
    def test_exact_and_more_specific(self):
        from repro.analysis.subnets import SubnetCandidates

        truth = [Prefix.parse("2001:200:0:a::/64"), Prefix.parse("2001:200::/40")]
        candidates = SubnetCandidates()
        candidates.record_bound(TARGET_A, 64)  # exact /64 match
        candidates.record_bound(parse("2001:200:1::1"), 44)  # more-specific in /40
        report = validate_candidates(
            candidates, truth, [TARGET_A, parse("2001:200:1::1")]
        )
        assert report.truth_probed == 2
        assert report.exact_matches == 1
        assert report.more_specific == 1

    def test_one_bit_short(self):
        from repro.analysis.subnets import SubnetCandidates

        truth = [Prefix.parse("2001:200::/40")]
        candidates = SubnetCandidates()
        candidates.record_bound(parse("2001:200:1::1"), 39)
        report = validate_candidates(candidates, truth, [parse("2001:200:1::1")])
        assert report.one_bit_short == 1

    def test_stratified_sample_one_per_truth(self):
        truth = [Prefix.parse("2001:200:0:a::/64"), Prefix.parse("2001:200:0:b::/64")]
        traces = diverging_pair()
        extra = TARGET_A + 5
        traces[extra] = trace_of(extra, [VP_HOP1])
        sample = stratified_sample(traces, truth)
        assert len(sample) == 2
        covered = {target >> 64 for target in sample}
        assert covered == {TARGET_A >> 64, TARGET_B >> 64}
