"""Tests for remote rate-limiter inference against ground truth."""

import pytest

from repro.analysis.limiter import LimiterProbeConfig, infer_limiter
from repro.netsim import Internet, InternetConfig, VantageConfig, build_internet


def world_with_premise(rate, burst):
    return build_internet(
        InternetConfig(
            n_edge=20,
            cpe_customers_per_isp=100,
            seed=33,
            response_loss=0.0,
            vantages=(
                VantageConfig(
                    "US-EDU-1", premise_hops=3, premise_limit=(rate, burst)
                ),
            ),
        )
    )


def any_target(built):
    for subnet in built.truth.subnets.values():
        return subnet.prefix.base | 0x1234
    raise AssertionError("no subnets")


class TestInference:
    @pytest.mark.parametrize("rate,burst", [(100.0, 40.0), (300.0, 120.0)])
    def test_recovers_truth_within_tolerance(self, rate, burst):
        built = world_with_premise(rate, burst)
        net = Internet(built)
        estimate = infer_limiter(net, "US-EDU-1", any_target(built), ttl=1)
        # Burst estimate within ~25% (the refill during the burst and
        # quantization blur it slightly).
        assert abs(estimate.burst - burst) <= max(8, burst * 0.25)
        # Rate estimate within ~30%.
        assert abs(estimate.rate - rate) <= rate * 0.3

    def test_overprovisioned_hop_reports_floor(self):
        built = world_with_premise(5000.0, 200.0)
        net = Internet(built)
        config = LimiterProbeConfig(scan_rates=(100.0, 200.0))
        estimate = infer_limiter(net, "US-EDU-1", any_target(built), 1, config)
        # Never overloaded: inference reports "at least the largest rate
        # scanned" rather than guessing.
        assert estimate.rate == 200.0
        assert all(fraction > 0.9 for _, fraction in estimate.scan)

    def test_scan_fractions_decrease_with_rate(self):
        built = world_with_premise(150.0, 50.0)
        net = Internet(built)
        estimate = infer_limiter(net, "US-EDU-1", any_target(built), 1)
        fractions = [fraction for _, fraction in estimate.scan]
        # Higher probe rates see lower response fractions.
        assert fractions[0] >= fractions[-1]

    def test_probe_accounting(self):
        built = world_with_premise(100.0, 30.0)
        net = Internet(built)
        estimate = infer_limiter(net, "US-EDU-1", any_target(built), 1)
        assert estimate.probes_used > 0
