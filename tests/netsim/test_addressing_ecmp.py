"""Unit tests for address assignment, ECMP hashing, and router state."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addrs import IIDClass, classify_iid
from repro.addrs.prefix import Prefix
from repro.netsim.addressing import (
    CPE_OUIS,
    host_iid,
    interface_address,
    interface_iid,
    pick_host_kind,
    random_mac,
)
from repro.netsim.ecmp import VARIANTS, flow_hash, flow_key, flow_variant
from repro.netsim.ratelimit import TokenBucket
from repro.netsim.topology import AddressPlan, HostKind, Router, RouterRole
from repro.packet import icmpv6, ipv6, udp
from repro.packet.ipv6 import IPv6Header, PROTO_ICMPV6, PROTO_UDP


class TestInterfaceAddressing:
    def test_lowbyte_plan(self):
        rng = random.Random(1)
        assert interface_iid(AddressPlan.LOWBYTE, 0, rng) == 1
        assert interface_iid(AddressPlan.LOWBYTE, 1, rng) == 2

    def test_random_plan_nonzero(self):
        rng = random.Random(1)
        for _ in range(50):
            assert interface_iid(AddressPlan.RANDOM, 0, rng) != 0

    def test_eui64_plan_classifies(self):
        rng = random.Random(1)
        iid = interface_iid(AddressPlan.EUI64, 0, rng, oui=CPE_OUIS[0])
        assert classify_iid(iid) is IIDClass.EUI64

    def test_interface_address_inside_link(self):
        rng = random.Random(2)
        link = Prefix.parse("2001:db8:0:5::/64")
        addr = interface_address(link, AddressPlan.RANDOM, 0, rng)
        assert link.contains(addr)

    def test_random_mac_oui(self):
        mac = random_mac(random.Random(3), 0xAABBCC)
        assert mac[:3] == (0xAA, 0xBB, 0xCC)
        assert all(0 <= octet <= 255 for octet in mac)


class TestHostAddressing:
    def test_privacy_iid_never_eui64(self):
        rng = random.Random(4)
        for _ in range(300):
            iid = host_iid(HostKind.SLAAC_PRIVACY, rng)
            assert classify_iid(iid) is not IIDClass.EUI64
            assert iid != 0

    def test_eui64_host(self):
        iid = host_iid(HostKind.EUI64, random.Random(5))
        assert classify_iid(iid) is IIDClass.EUI64

    def test_lowbyte_server_small(self):
        for _ in range(50):
            iid = host_iid(HostKind.LOWBYTE_SERVER, random.Random(6))
            assert 1 <= iid <= 0x200

    def test_pick_host_kind_mix(self):
        rng = random.Random(7)
        kinds = [pick_host_kind(rng, 0.5, 0.3) for _ in range(2000)]
        privacy = kinds.count(HostKind.SLAAC_PRIVACY) / len(kinds)
        eui = kinds.count(HostKind.EUI64) / len(kinds)
        assert 0.45 < privacy < 0.55
        assert 0.25 < eui < 0.35


class TestFlowHashing:
    def _icmp_packet(self, src, dst, ident=1, seq=1, payload=b"x"):
        echo = icmpv6.echo_request(ident, seq, payload)
        segment = echo.pack(src, dst)
        header = IPv6Header(src, dst, len(segment), PROTO_ICMPV6)
        return header, segment

    def test_same_packet_same_variant(self):
        header, payload = self._icmp_packet(1, 2)
        assert flow_variant(header, payload) == flow_variant(header, payload)

    def test_variant_range(self):
        for dst in range(1, 50):
            header, payload = self._icmp_packet(1, dst)
            assert 0 <= flow_variant(header, payload) < VARIANTS

    def test_icmp_checksum_feeds_hash(self):
        """Two echo requests differing only in payload (hence checksum)
        hash differently — the phenomenon Yarrp6's fudge neutralizes."""
        header_a, payload_a = self._icmp_packet(1, 2, payload=b"aaaa")
        header_b, payload_b = self._icmp_packet(1, 2, payload=b"bbbb")
        assert flow_hash(header_a, payload_a) != flow_hash(header_b, payload_b)

    def test_udp_ports_feed_hash(self):
        src, dst = 1, 2
        seg_a = udp.build_datagram(src, dst, 1000, 80, b"x")
        seg_b = udp.build_datagram(src, dst, 1001, 80, b"x")
        header = IPv6Header(src, dst, len(seg_a), PROTO_UDP)
        assert flow_hash(header, seg_a) != flow_hash(header, seg_b)

    def test_destination_feeds_hash(self):
        header_a, payload_a = self._icmp_packet(1, 100)
        header_b, payload_b = self._icmp_packet(1, 200)
        assert flow_key(header_a, payload_a) != flow_key(header_b, payload_b)


class TestRouterState:
    def _router(self, router_id=7):
        return Router(router_id, 64500, RouterRole.CORE, TokenBucket(100, 10))

    def test_frag_counter_monotone(self):
        router = self._router()
        values = [router.frag_identification(t * 1000) for t in range(100)]
        # Monotone modulo wraparound (fits easily here).
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_frag_counter_drifts_with_time(self):
        fast = self._router(router_id=3)  # drift derived from id
        baseline = fast.frag_identification(0)
        later = fast.frag_identification(10_000_000)  # 10s later
        expected_drift = fast.frag_drift * 10
        assert later - baseline >= 1  # at least the increment
        assert later - baseline <= expected_drift + 2

    def test_atomic_state_expires(self):
        router = self._router()
        router.note_packet_too_big(123, now=0, hold_us=1000)
        assert router.atomic_active(123, 500)
        assert not router.atomic_active(123, 1500)
        assert not router.atomic_active(456, 0)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=2, max_size=50))
    def test_frag_ids_unique_any_schedule(self, times):
        router = self._router(router_id=11)
        values = [router.frag_identification(t) for t in sorted(times)]
        assert len(set(values)) == len(values)
