"""Shared fixtures: a small deterministic internet reused across tests."""

import pytest

from repro.netsim import Internet, InternetConfig, build_internet


@pytest.fixture(scope="session")
def small_built():
    return build_internet(InternetConfig(n_edge=40, cpe_customers_per_isp=250, seed=7))


@pytest.fixture()
def net(small_built):
    internet = Internet(small_built)
    internet.reset_dynamics()
    return internet
