"""Tests for ground-truth internet generation."""

from collections import Counter

from repro.addrs import classify_address, classify_set, IIDClass
from repro.addrs.prefix import Prefix
from repro.netsim import InternetConfig, build_internet
from repro.netsim.topology import AddressPlan, RouterRole


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = build_internet(InternetConfig(n_edge=10, cpe_customers_per_isp=50, seed=3))
        b = build_internet(InternetConfig(n_edge=10, cpe_customers_per_isp=50, seed=3))
        assert a.truth.all_router_addresses() == b.truth.all_router_addresses()
        assert set(a.truth.subnets) == set(b.truth.subnets)
        assert sorted(a.truth.all_host_addresses()) == sorted(b.truth.all_host_addresses())

    def test_different_seed_different_world(self):
        a = build_internet(InternetConfig(n_edge=10, cpe_customers_per_isp=50, seed=3))
        b = build_internet(InternetConfig(n_edge=10, cpe_customers_per_isp=50, seed=4))
        assert a.truth.all_router_addresses() != b.truth.all_router_addresses()


class TestStructure:
    def test_tiers_present(self, small_built):
        tiers = Counter(asys.tier for asys in small_built.truth.ases.values())
        assert tiers[1] == 4
        assert tiers[2] == 10
        assert tiers[3] > 40  # edges + CPE ISPs + vantage ASes + relay

    def test_vantages_built(self, small_built):
        assert set(small_built.vantages) == {"US-EDU-1", "US-EDU-2", "EU-NET"}
        assert len(small_built.vantages["US-EDU-2"].premise_chain) == 6
        assert len(small_built.vantages["US-EDU-1"].premise_chain) == 3

    def test_every_edge_has_provider(self, small_built):
        for asn in small_built.edge_asns + small_built.cpe_asns:
            providers = small_built.uplinks[asn]
            assert providers
            assert all(
                small_built.truth.ases[provider].tier == 2 for provider in providers
            )

    def test_bgp_covers_advertised_prefixes(self, small_built):
        for asys in small_built.truth.ases.values():
            for prefix in asys.prefixes:
                assert small_built.truth.bgp.lookup(prefix.base) == asys.asn

    def test_registry_superset_of_bgp(self, small_built):
        bgp_prefixes = set(small_built.truth.bgp.prefixes())
        registry_prefixes = set(small_built.truth.registry.prefixes())
        assert bgp_prefixes <= registry_prefixes

    def test_unadvertised_infra_exists(self):
        built = build_internet(
            InternetConfig(n_edge=60, cpe_customers_per_isp=50, seed=11)
        )
        hidden = [
            asys for asys in built.truth.ases.values() if asys.internal_prefixes
        ]
        assert hidden, "expected some registry-only infrastructure ASes"
        for asys in hidden:
            for prefix in asys.internal_prefixes:
                # Registry knows the prefix; BGP does not.
                assert built.truth.registry.lookup(prefix.base) == asys.asn
                assert built.truth.bgp.lookup(prefix.base) is None
            # Customers remain globally reachable.
            assert asys.prefixes

    def test_equivalent_asn_families(self, small_built):
        mapping = small_built.truth.equivalent_asns
        # At least one non-identity mapping was built.
        assert any(src != dst for src, dst in mapping.items())

    def test_6to4_relay_advertised(self, small_built):
        assert small_built.truth.bgp.lookup(Prefix.parse("2002::/16").base) is not None


class TestSubnets:
    def test_leaves_are_64(self, small_built):
        for subnet in small_built.truth.subnets.values():
            assert subnet.prefix.length == 64

    def test_leaves_inside_as_prefix(self, small_built):
        for asn in small_built.edge_asns:
            asys = small_built.truth.ases[asn]
            covering = asys.prefixes + asys.internal_prefixes
            for subnet in asys.plan.leaves:
                assert any(prefix.covers(subnet.prefix) for prefix in covering)

    def test_plan_hierarchy(self, small_built):
        for asn in small_built.edge_asns:
            plan = small_built.truth.ases[asn].plan
            for alloc in plan.allocations:
                assert any(dist.covers(alloc) for dist in plan.distribution)
            for leaf in plan.leaves:
                assert any(alloc.covers(leaf.prefix) for alloc in plan.allocations)

    def test_gateway_in_leaf_prefix(self, small_built):
        for subnet in small_built.truth.subnets.values():
            assert subnet.prefix.contains(subnet.gateway_addr)

    def test_conventional_gateways_lowbyte(self, small_built):
        """Non-CPE gateways carry the ::1 IID — the IA hack's premise."""
        cpe_asns = set(small_built.cpe_asns)
        for subnet in small_built.truth.subnets.values():
            if subnet.gateway.asn not in cpe_asns:
                assert subnet.gateway_addr == subnet.prefix.base | 1

    def test_cpe_gateways_eui64(self, small_built):
        for asn in small_built.cpe_asns:
            for subnet in small_built.truth.ases[asn].plan.leaves:
                assert classify_address(subnet.gateway_addr) is IIDClass.EUI64

    def test_hosts_inside_leaf(self, small_built):
        for subnet in small_built.truth.subnets.values():
            for addr in subnet.host_addresses():
                assert subnet.prefix.contains(addr)

    def test_www_clients_subset_of_hosts(self, small_built):
        for subnet in small_built.truth.subnets.values():
            assert set(subnet.www_client_iids) <= set(subnet.host_iids)


class TestAddressPlans:
    def test_cpe_interfaces_are_eui64(self, small_built):
        for asn in small_built.cpe_asns:
            asys = small_built.truth.ases[asn]
            assert asys.address_plan is AddressPlan.EUI64
            cpe_ifaces = [
                iface
                for router in asys.routers
                if router.role is RouterRole.CPE
                for iface in router.interfaces
            ]
            counts = classify_set(cpe_ifaces)
            assert counts[IIDClass.EUI64] == len(cpe_ifaces)

    def test_iid_mix_across_all_router_addresses(self, small_built):
        counts = classify_set(small_built.truth.all_router_addresses())
        # The internet must contain all three classes the paper observes.
        assert counts[IIDClass.LOWBYTE] > 0
        assert counts[IIDClass.EUI64] > 0
        assert counts[IIDClass.RANDOMIZED] > 0

    def test_interfaces_registered_on_routers(self, small_built):
        for addr, router in small_built.truth.router_addresses.items():
            assert addr in router.interfaces


class TestGroundTruthHelpers:
    def test_subnet_of(self, small_built):
        subnet = next(iter(small_built.truth.subnets.values()))
        addr = subnet.prefix.base | 0x1234
        assert small_built.truth.subnet_of(addr) is subnet

    def test_origin_asn(self, small_built):
        for asn in small_built.edge_asns[:5]:
            asys = small_built.truth.ases[asn]
            if asys.prefixes:
                assert small_built.truth.origin_asn(asys.prefixes[0].base) == asn

    def test_canonical_asn_identity_default(self, small_built):
        assert small_built.truth.canonical_asn(99999) == 99999

    def test_host_population_nonempty(self, small_built):
        hosts = small_built.truth.all_host_addresses()
        assert len(hosts) > 500
