"""Tests for the token-bucket ICMPv6 rate limiter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.engine import US_PER_SECOND
from repro.netsim.ratelimit import TokenBucket, UnlimitedBucket


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=100, burst=10)
        assert bucket.peek(0) == 10

    def test_burst_consumed(self):
        bucket = TokenBucket(rate=100, burst=5)
        results = [bucket.consume(0) for _ in range(7)]
        assert results == [True] * 5 + [False] * 2
        assert bucket.allowed == 5
        assert bucket.denied == 2

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=100, burst=5)
        for _ in range(5):
            bucket.consume(0)
        assert not bucket.consume(0)
        # After 10ms at 100/s one token has accrued.
        assert bucket.consume(US_PER_SECOND // 100)

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=1000, burst=3)
        assert bucket.peek(10 * US_PER_SECOND) == 3

    def test_burst_of_probes_vs_paced_probes(self):
        """The Figure 5 mechanism: a burst loses most responses; the same
        probes paced under the refill rate all succeed."""
        burst_bucket = TokenBucket(rate=100, burst=10)
        burst_ok = sum(burst_bucket.consume(0) for _ in range(100))
        paced_bucket = TokenBucket(rate=100, burst=10)
        interval = US_PER_SECOND // 50  # 50 pps < 100/s refill
        paced_ok = sum(paced_bucket.consume(index * interval) for index in range(100))
        assert burst_ok == 10
        assert paced_ok == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=5)
        with pytest.raises(ValueError):
            TokenBucket(rate=10, burst=0)

    def test_reset(self):
        bucket = TokenBucket(rate=10, burst=2)
        bucket.consume(0)
        bucket.consume(0)
        bucket.consume(0)
        bucket.reset()
        assert bucket.allowed == 0 and bucket.denied == 0
        assert bucket.peek(0) == 2

    def test_total(self):
        bucket = TokenBucket(rate=10, burst=1)
        bucket.consume(0)
        bucket.consume(0)
        assert bucket.total == 2

    @given(
        st.floats(min_value=1, max_value=10_000),
        st.floats(min_value=1, max_value=1_000),
        st.lists(st.integers(min_value=0, max_value=10**7), min_size=1, max_size=100),
    )
    def test_tokens_bounded(self, rate, burst, times):
        bucket = TokenBucket(rate=rate, burst=burst)
        for now in sorted(times):
            bucket.consume(now)
            assert 0 <= bucket.peek(now) <= burst

    @given(st.integers(min_value=1, max_value=1000))
    def test_long_run_rate_bound(self, n):
        """Over a long window, grants can't exceed burst + rate * window."""
        bucket = TokenBucket(rate=50, burst=5)
        granted = sum(
            bucket.consume(index * 1000)  # 1000 pps attempts
            for index in range(n)
        )
        window_seconds = (n - 1) * 1000 / US_PER_SECOND
        assert granted <= 5 + 50 * window_seconds + 1


class TestUnlimitedBucket:
    def test_always_allows(self):
        bucket = UnlimitedBucket()
        assert all(bucket.consume(0) for _ in range(1000))
        assert bucket.denied == 0
        assert bucket.total == 1000

    def test_reset(self):
        bucket = UnlimitedBucket()
        bucket.consume(0)
        bucket.reset()
        assert bucket.allowed == 0
