"""Integration tests for the packet-level internet simulator."""

import pytest

from repro.addrs import format_address, parse
from repro.netsim import Internet, InternetConfig, TerminalKind
from repro.netsim.ecmp import flow_variant
from repro.packet import icmpv6, ipv6, tcp, udp
from repro.packet.icmpv6 import UnreachableCode
from repro.packet.ipv6 import IPv6Header, PROTO_ICMPV6, PROTO_TCP, PROTO_UDP


def icmp_probe(src, dst, ttl, ident=7, seq=1, payload=b"probe"):
    echo = icmpv6.echo_request(ident, seq, payload)
    return ipv6.build_packet(
        IPv6Header(src, dst, 0, PROTO_ICMPV6, hop_limit=ttl),
        echo.pack(src, dst),
    )


def udp_probe(src, dst, ttl, sport=4660, dport=33434, payload=b"probe"):
    return ipv6.build_packet(
        IPv6Header(src, dst, 0, PROTO_UDP, hop_limit=ttl),
        udp.build_datagram(src, dst, sport, dport, payload),
    )


def parse_icmp(response):
    header, payload = ipv6.split_packet(response.data)
    return header, icmpv6.ICMPv6Message.unpack(payload)


def first_host(net):
    for subnet in net.truth.subnets.values():
        if subnet.host_iids:
            return subnet.host_addresses()[0]
    raise AssertionError("no hosts built")


class TestPathCompilation:
    def test_path_terminates_in_lan_for_host(self, net):
        vantage = net.vantage("US-EDU-1")
        path = net.path_for(vantage, first_host(net))
        assert path.terminal is TerminalKind.LAN
        assert path.length >= 6

    def test_path_cached(self, net):
        vantage = net.vantage("US-EDU-1")
        dst = first_host(net)
        assert net.path_for(vantage, dst, 1) is net.path_for(vantage, dst, 1)

    def test_same_slash64_same_path(self, net):
        vantage = net.vantage("US-EDU-1")
        dst = first_host(net)
        sibling = (dst & ~0xFFFF) | 0xABCD
        assert net.path_for(vantage, dst, 0) is net.path_for(vantage, sibling, 0)

    def test_first_hops_are_premise_chain(self, net):
        vantage = net.vantage("US-EDU-2")
        path = net.path_for(vantage, first_host(net))
        premise = [iface for _, iface in vantage.premise_chain]
        assert [iface for _, iface, _ in path.hops[: len(premise)]] == premise

    def test_unrouted_destination_no_route(self, net):
        vantage = net.vantage("US-EDU-1")
        path = net.path_for(vantage, parse("3fff:ffff::1"))
        assert path.terminal is TerminalKind.ERROR
        assert path.error_code is UnreachableCode.NO_ROUTE

    def test_routed_but_unallocated_is_error(self, net):
        """An address inside an advertised prefix but outside any active
        distribution/allocation draws an error, not a LAN delivery."""
        vantage = net.vantage("US-EDU-1")
        for asn in net.built.edge_asns:
            asys = net.truth.ases[asn]
            if not asys.prefixes or not net.built.dist_index[asn]:
                continue
            prefix = asys.prefixes[0]
            dists = net.built.dist_index[asn]
            # Probe the top /64 of the AS prefix; collides with a dist
            # only if that dist covers it.
            probe_addr = prefix.last & ~0xFFFF | 1
            if any(dist.contains(probe_addr) for dist in dists):
                continue
            path = net.path_for(vantage, probe_addr)
            assert path.terminal is TerminalKind.ERROR
            return
        pytest.skip("no suitable unallocated space found")

    def test_delays_monotone(self, net):
        path = net.path_for(net.vantage("EU-NET"), first_host(net))
        delays = [delay for _, _, delay in path.hops]
        assert delays == sorted(delays)
        assert delays[0] > 0

    def test_variants_may_differ_but_same_terminal(self, net):
        vantage = net.vantage("US-EDU-1")
        dst = first_host(net)
        paths = [net.path_for(vantage, dst, variant) for variant in range(4)]
        assert all(path.terminal == paths[0].terminal for path in paths)
        # Last hop (the gateway) is identical across variants.
        last = {path.hops[-1][1] for path in paths}
        assert len(last) == 1


class TestProbing:
    def test_ttl_walk_reconstructs_path(self, net):
        vantage = net.vantage("US-EDU-1")
        dst = None
        path = None
        # Pick a target whose path has no probabilistically-silent,
        # protocol-selective, or quotation-mangling hops.
        for subnet in net.truth.subnets.values():
            if not subnet.host_iids:
                continue
            candidate = subnet.host_addresses()[0]
            candidate_path = net.path_for(
                vantage, candidate, flow_variant_of(vantage.address, candidate)
            )
            if all(
                router.response_probability >= 1.0
                and router.respond_protocols is None
                and router.router_id not in net._manglers
                for router, _, _ in candidate_path.hops
            ):
                dst, path = candidate, candidate_path
                break
        assert dst is not None, "no clean path found in this world"
        seen = []
        for ttl in range(1, path.length + 1):
            response = net.probe(icmp_probe(vantage.address, dst, ttl), now=ttl * 10_000_000)
            assert response is not None, "hop %d silent" % ttl
            header, message = parse_icmp(response)
            assert message.is_time_exceeded
            seen.append(header.src)
        assert seen == [iface for _, iface, _ in path.hops]

    def test_quotation_contains_probe(self, net):
        vantage = net.vantage("US-EDU-1")
        dst = first_host(net)
        probe = icmp_probe(vantage.address, dst, 2, payload=b"MAGICSTATE")
        response = net.probe(probe, now=0)
        _, message = parse_icmp(response)
        assert b"MAGICSTATE" in message.quotation

    def test_echo_reply_from_host(self, net):
        vantage = net.vantage("US-EDU-1")
        dst = first_host(net)
        response = net.probe(icmp_probe(vantage.address, dst, 64, ident=42, seq=9), now=0)
        header, message = parse_icmp(response)
        assert message.is_echo_reply
        assert header.src == dst
        assert message.identifier == 42 and message.sequence == 9

    def test_udp_to_host_port_unreachable(self, net):
        vantage = net.vantage("US-EDU-1")
        dst = first_host(net)
        response = net.probe(udp_probe(vantage.address, dst, 64), now=0)
        if response is None:
            pytest.skip("probabilistic loss")
        header, message = parse_icmp(response)
        assert message.code == int(UnreachableCode.PORT_UNREACHABLE)

    def test_tcp_to_host_rst(self, net):
        vantage = net.vantage("US-EDU-1")
        dst = first_host(net)
        syn = tcp.build_segment(
            vantage.address, dst, tcp.TCPHeader(1234, 80, flags=tcp.FLAG_SYN)
        )
        packet = ipv6.build_packet(
            IPv6Header(vantage.address, dst, 0, PROTO_TCP, hop_limit=64), syn
        )
        response = net.probe(packet, now=0)
        if response is None:
            pytest.skip("probabilistic loss")
        assert response.kind == "tcp"
        _, payload = ipv6.split_packet(response.data)
        header, _ = tcp.split_segment(payload)
        assert header.rst

    def test_dead_iid_mostly_silent_or_unreachable(self, net):
        vantage = net.vantage("US-EDU-1")
        subnet = next(iter(net.truth.subnets.values()))
        dead = subnet.prefix.base | 0x1234_5678_1234_5678
        outcomes = set()
        for index in range(30):
            response = net.probe(
                icmp_probe(vantage.address, dead, 64, seq=index), now=index * 1_000_000
            )
            if response is None:
                outcomes.add("silent")
            else:
                _, message = parse_icmp(response)
                outcomes.add(icmpv6.classify_response(message))
        assert outcomes <= {"silent", "address unreachable"}
        assert outcomes  # something happened

    def test_unknown_source_rejected(self, net):
        dst = first_host(net)
        with pytest.raises(ValueError):
            net.probe(icmp_probe(parse("fd00::1"), dst, 4), now=0)

    def test_stats_counted(self, net):
        vantage = net.vantage("US-EDU-1")
        dst = first_host(net)
        net.probe(icmp_probe(vantage.address, dst, 1), now=0)
        assert net.stats.probes == 1
        assert net.stats.time_exceeded + net.stats.rate_limited + net.stats.lost >= 1


class TestRateLimiting:
    def test_burst_drains_first_hop(self, net):
        """Many TTL=1 probes in a tight burst exhaust the first hop's
        bucket; the same count paced slowly does not (Figure 5)."""
        vantage = net.vantage("US-EDU-1")
        dst = first_host(net)
        responses = sum(
            net.probe(icmp_probe(vantage.address, dst, 1, seq=index), now=index) is not None
            for index in range(500)
        )
        assert responses < 250
        net.reset_dynamics()
        paced = sum(
            net.probe(
                icmp_probe(vantage.address, dst, 1, seq=index),
                now=index * 100_000,  # 10 pps
            )
            is not None
            for index in range(100)
        )
        assert paced >= 95

    def test_reset_restores_tokens(self, net):
        vantage = net.vantage("US-EDU-1")
        dst = first_host(net)
        for index in range(500):
            net.probe(icmp_probe(vantage.address, dst, 1, seq=index), now=index)
        net.reset_dynamics()
        assert net.probe(icmp_probe(vantage.address, dst, 1), now=0) is not None


class TestFiltering:
    def test_blocked_protocols_filtered_past_border(self, net):
        """Find an AS that blocks UDP and show ICMPv6 penetrates deeper."""
        for asn in net.built.edge_asns:
            asys = net.truth.ases[asn]
            if PROTO_UDP not in asys.policy.blocked_protocols:
                continue
            if PROTO_ICMPV6 in asys.policy.blocked_protocols:
                continue  # admin firewall: ICMPv6 can't penetrate either
            if not asys.plan.leaves:
                continue
            dst = asys.plan.leaves[0].prefix.base | 1
            vantage = net.vantage("US-EDU-1")
            # Resolve the path this exact UDP flow will take, so the TTL
            # lands beyond its filtering border.
            deep = udp_probe(vantage.address, dst, 64)
            header, payload = ipv6.split_packet(deep)
            variant = flow_variant(header, payload)
            udp_path = net.path_for(vantage, dst, variant)
            deep = udp_probe(vantage.address, dst, udp_path.length)
            response = net.probe(deep, now=0)
            if response is not None:
                _, message = parse_icmp(response)
                assert message.code == int(UnreachableCode.ADMIN_PROHIBITED)
            assert net.stats.filtered >= 1
            # ICMPv6 to the same depth gets a time exceeded (modulo loss).
            net.reset_dynamics()
            icmp_len = net.path_for(
                vantage, dst, flow_variant_of(vantage.address, dst)
            ).length
            got = net.probe(icmp_probe(vantage.address, dst, icmp_len), now=0)
            if got is not None:
                _, message = parse_icmp(got)
                assert message.is_time_exceeded
            return
        pytest.skip("no UDP-blocking AS in this world")

    def test_filter_does_not_affect_shallow_ttl(self, net):
        """TTL expiring before the filtering border still elicits TE."""
        for asn in net.built.edge_asns:
            asys = net.truth.ases[asn]
            if not asys.policy.blocked_protocols or not asys.plan.leaves:
                continue
            blocked_proto = next(iter(asys.policy.blocked_protocols))
            if blocked_proto != PROTO_UDP:
                continue
            dst = asys.plan.leaves[0].prefix.base | 1
            vantage = net.vantage("US-EDU-1")
            response = net.probe(udp_probe(vantage.address, dst, 1), now=0)
            if response is not None:
                _, message = parse_icmp(response)
                assert message.is_time_exceeded
            return
        pytest.skip("no UDP-blocking AS in this world")


def flow_variant_of(src, dst):
    """Variant the simulator will pick for our standard ICMP probe."""
    echo = icmpv6.echo_request(7, 1, b"probe")
    header = IPv6Header(src, dst, 0, PROTO_ICMPV6, hop_limit=5)
    return flow_variant(header, echo.pack(src, dst))


class TestQuotationMisbehaviour:
    def test_some_routers_mangle_or_truncate(self, net):
        """The deterministic mangler assignment marks a small router subset."""
        behaviours = set(net._manglers.values())
        assert behaviours <= {"rewrite", "truncate"}
        assert 0 < len(net._manglers) < len(net.truth.routers) * 0.1
