"""Tests for the virtual-time event engine."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.engine import (
    _COMPACT_MIN,
    Engine,
    US_PER_SECOND,
    pps_interval,
    seconds,
)


class TestEngine:
    def test_starts_at_zero(self):
        assert Engine().now == 0

    def test_schedule_and_run(self):
        engine = Engine()
        fired = []
        engine.schedule(100, lambda: fired.append(engine.now))
        engine.schedule(50, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [50, 100]
        assert engine.now == 100

    def test_fifo_for_simultaneous(self):
        engine = Engine()
        fired = []
        for tag in range(5):
            engine.schedule(10, lambda tag=tag: fired.append(tag))
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_run_until_stops(self):
        engine = Engine()
        fired = []
        engine.schedule(10, lambda: fired.append("early"))
        engine.schedule(1000, lambda: fired.append("late"))
        engine.run(until=100)
        assert fired == ["early"]
        assert engine.now == 100
        assert engine.pending == 1
        engine.run()
        assert fired == ["early", "late"]

    def test_nested_scheduling(self):
        engine = Engine()
        fired = []

        def first():
            fired.append(engine.now)
            engine.schedule(5, lambda: fired.append(engine.now))

        engine.schedule(10, first)
        engine.run()
        assert fired == [10, 15]

    def test_schedule_in_past_runs_now(self):
        engine = Engine()
        fired = []
        engine.schedule(100, lambda: engine.schedule_at(0, lambda: fired.append(engine.now)))
        engine.run()
        assert fired == [100]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1, lambda: None)

    def test_step(self):
        engine = Engine()
        fired = []
        engine.schedule(3, lambda: fired.append(1))
        assert engine.step()
        assert fired == [1]
        assert not engine.step()

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=50))
    def test_events_fire_in_time_order(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=10**6),
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_fifo_among_equal_times(self, events):
        """The columnar queue's core claim: (time, scheduling order) is
        the total event order, exactly as a (when, seq, cb) tuple heap
        would produce — including duplicate timestamps."""
        engine = Engine()
        fired = []
        for tag, (_, delay) in enumerate(events):
            engine.schedule(delay, lambda tag=tag: fired.append(tag))
        engine.run()
        expected = [
            tag
            for _, tag in sorted(
                (delay, tag) for tag, (_, delay) in enumerate(events)
            )
        ]
        assert fired == expected


class TestRunBatch:
    def test_fires_all_events_at_earliest_timestamp(self):
        engine = Engine()
        fired = []
        engine.schedule(10, lambda: fired.append("a"))
        engine.schedule(10, lambda: fired.append("b"))
        engine.schedule(10, lambda: fired.append("c"))
        engine.schedule(20, lambda: fired.append("late"))
        assert engine.run_batch() == 3
        assert fired == ["a", "b", "c"]
        assert engine.now == 10
        assert engine.pending == 1
        assert engine.run_batch() == 1
        assert fired == ["a", "b", "c", "late"]

    def test_empty_queue_returns_zero(self):
        engine = Engine()
        assert engine.run_batch() == 0
        assert engine.now == 0

    def test_includes_events_scheduled_mid_batch_at_same_time(self):
        """An event that schedules another event for the SAME timestamp
        extends the current batch (matching run()'s behaviour, where the
        new event simply pops next)."""
        engine = Engine()
        fired = []
        engine.schedule(
            5, lambda: (fired.append("first"), engine.schedule(0, lambda: fired.append("nested")))
        )
        assert engine.run_batch() == 2
        assert fired == ["first", "nested"]

    def test_batched_drain_equals_run(self):
        """Draining entirely through run_batch reproduces run()'s exact
        firing order."""
        rng = random.Random(42)
        delays = [rng.randrange(0, 50) for _ in range(200)]
        order_run, order_batch = [], []
        for collector, drain in ((order_run, "run"), (order_batch, "batch")):
            engine = Engine()
            for tag, delay in enumerate(delays):
                engine.schedule(delay, lambda tag=tag: collector.append(tag))
            if drain == "run":
                engine.run()
            else:
                while engine.run_batch():
                    pass
        assert order_batch == order_run


class TestCompaction:
    def test_compaction_preserves_order_and_results(self):
        """Push enough churn through the queue to trigger slot-array
        compaction repeatedly; firing order must stay (time, FIFO)."""
        engine = Engine()
        fired = []
        rng = random.Random(7)
        pending = 0

        def make(tag):
            return lambda: fired.append(tag)

        tag = 0
        for _ in range(3 * _COMPACT_MIN):
            engine.schedule(rng.randrange(0, 10_000), make(tag))
            tag += 1
            pending += 1
            # Keep the live count low so the mostly-dead threshold trips.
            while pending > 4:
                engine.step()
                pending -= 1
        engine.run()
        assert len(fired) == tag
        assert sorted(fired) == list(range(tag))

    def test_compaction_keeps_aliases_valid_inside_run(self):
        """run() holds aliases to the heap and slot lists; a compaction
        triggered by scheduling from *inside* a callback must mutate
        those lists in place, not rebind them."""
        engine = Engine()
        fired = []

        def stuff_queue():
            # Enough appends to cross _COMPACT_MIN while almost all
            # earlier slots are dead -> compaction fires mid-run.
            for index in range(_COMPACT_MIN + 8):
                engine.schedule(
                    1 + index, lambda index=index: fired.append(index)
                )

        engine.schedule(0, stuff_queue)
        engine.run()
        assert fired == list(range(_COMPACT_MIN + 8))

    def test_slot_array_shrinks_when_mostly_dead(self):
        """The compaction actually reclaims memory: after heavy churn the
        slot array must not retain one entry per ever-scheduled event."""
        engine = Engine()
        for index in range(4 * _COMPACT_MIN):
            engine.schedule(index, lambda: None)
            engine.step()
        assert len(engine._slots) < 2 * _COMPACT_MIN

    def test_pending_tracks_live_events_across_compaction(self):
        engine = Engine()
        for index in range(2 * _COMPACT_MIN):
            engine.schedule(10 + index, lambda: None)
        for _ in range(2 * _COMPACT_MIN - 3):
            engine.step()
        assert engine.pending == 3
        engine.run()
        assert engine.pending == 0


class TestConversions:
    def test_seconds(self):
        assert seconds(1.5) == 1_500_000

    def test_pps_interval(self):
        assert pps_interval(1000) == 1000
        assert pps_interval(20) == 50_000
        assert pps_interval(10**9) == 1  # floor of one microsecond

    def test_pps_interval_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            pps_interval(0)

    def test_us_per_second(self):
        assert US_PER_SECOND == 10**6
