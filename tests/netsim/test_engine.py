"""Tests for the virtual-time event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.engine import Engine, US_PER_SECOND, pps_interval, seconds


class TestEngine:
    def test_starts_at_zero(self):
        assert Engine().now == 0

    def test_schedule_and_run(self):
        engine = Engine()
        fired = []
        engine.schedule(100, lambda: fired.append(engine.now))
        engine.schedule(50, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [50, 100]
        assert engine.now == 100

    def test_fifo_for_simultaneous(self):
        engine = Engine()
        fired = []
        for tag in range(5):
            engine.schedule(10, lambda tag=tag: fired.append(tag))
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_run_until_stops(self):
        engine = Engine()
        fired = []
        engine.schedule(10, lambda: fired.append("early"))
        engine.schedule(1000, lambda: fired.append("late"))
        engine.run(until=100)
        assert fired == ["early"]
        assert engine.now == 100
        assert engine.pending == 1
        engine.run()
        assert fired == ["early", "late"]

    def test_nested_scheduling(self):
        engine = Engine()
        fired = []

        def first():
            fired.append(engine.now)
            engine.schedule(5, lambda: fired.append(engine.now))

        engine.schedule(10, first)
        engine.run()
        assert fired == [10, 15]

    def test_schedule_in_past_runs_now(self):
        engine = Engine()
        fired = []
        engine.schedule(100, lambda: engine.schedule_at(0, lambda: fired.append(engine.now)))
        engine.run()
        assert fired == [100]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1, lambda: None)

    def test_step(self):
        engine = Engine()
        fired = []
        engine.schedule(3, lambda: fired.append(1))
        assert engine.step()
        assert fired == [1]
        assert not engine.step()

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=50))
    def test_events_fire_in_time_order(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestConversions:
    def test_seconds(self):
        assert seconds(1.5) == 1_500_000

    def test_pps_interval(self):
        assert pps_interval(1000) == 1000
        assert pps_interval(20) == 50_000
        assert pps_interval(10**9) == 1  # floor of one microsecond

    def test_pps_interval_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            pps_interval(0)

    def test_us_per_second(self):
        assert US_PER_SECOND == 10**6
