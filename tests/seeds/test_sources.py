"""Tests for the synthetic seed sources (Table 1/Table 2 machinery)."""

import pytest

from repro.addrs import IIDClass
from repro.netsim import InternetConfig, build_internet
from repro.netsim.topology import RouterRole
from repro.seeds import (
    SeedList,
    build_all_seeds,
    caida_seed,
    cdn_observations,
    cdn_seed,
    dnsdb_seed,
    fdns_seed,
    fiebig_seed,
    join,
    random_seed,
    sixgen_seed,
    tum_seed,
    tum_subsets,
)


@pytest.fixture(scope="module")
def built():
    return build_internet(InternetConfig(n_edge=50, cpe_customers_per_isp=400, seed=13))


@pytest.fixture(scope="module")
def all_seeds(built):
    return build_all_seeds(built, random_count=3000)


class TestSeedList:
    def test_addresses_and_prefixes_split(self, built):
        caida = caida_seed(built)
        assert caida.prefixes
        assert not caida.addresses

    def test_join_dedupes(self):
        a = SeedList("a", "test", [1, 2])
        b = SeedList("b", "test", [2, 3])
        merged = join("combined", [a, b])
        assert sorted(merged.addresses) == [1, 2, 3]

    def test_iid_profile(self, built):
        profile = fiebig_seed(built).iid_profile()
        assert sum(profile.values()) > 0


class TestCaida:
    def test_prefixes_at_most_48(self, built):
        assert all(prefix.length <= 48 for prefix in caida_seed(built).prefixes)

    def test_prefixes_advertised(self, built):
        for prefix in caida_seed(built).prefixes[:20]:
            assert built.truth.bgp.lookup(prefix.base) is not None


class TestFiebig:
    def test_dense_in_few_ases(self, built):
        """rDNS walking covers a minority of ASes but deeply."""
        fiebig = fiebig_seed(built)
        asns = {
            built.truth.origin_asn(addr)
            for addr in fiebig.addresses
            if built.truth.origin_asn(addr) is not None
        }
        all_asns = len(built.edge_asns)
        assert 0 < len(asns) < all_asns * 0.6

    def test_contains_unrouted_infrastructure(self, built):
        """Hidden-infra router addresses appear (the real list's large
        unrouted share)."""
        fiebig = fiebig_seed(built)
        unrouted = [
            addr for addr in fiebig.addresses if built.truth.origin_asn(addr) is None
        ]
        routed = [
            addr
            for addr in fiebig.addresses
            if built.truth.origin_asn(addr) is not None
        ]
        assert routed
        # Unrouted share is world-dependent; require presence when any
        # covered AS hides infrastructure.
        hidden_ases = [
            asys for asys in built.truth.ases.values() if asys.internal_prefixes
        ]
        if hidden_ases and unrouted:
            assert len(unrouted) > 0

    def test_lowbyte_heavy(self, built):
        profile = fiebig_seed(built).iid_profile()
        assert profile[IIDClass.LOWBYTE] > profile[IIDClass.EUI64]


class TestFdns:
    def test_contains_6to4(self, built):
        fdns = fdns_seed(built)
        sixtofour = [addr for addr in fdns.addresses if addr >> 112 == 0x2002]
        assert len(sixtofour) == 400

    def test_broad_as_coverage(self, built):
        fdns = fdns_seed(built)
        asns = {
            built.truth.origin_asn(addr)
            for addr in fdns.addresses
            if built.truth.origin_asn(addr) is not None
        }
        assert len(asns) > len(built.edge_asns) * 0.3


class TestCdn:
    def test_observations_are_privacy_addresses(self, built):
        observations = cdn_observations(built, intervals=4)
        assert observations
        # Rotation: a /64 with observations shows multiple distinct IIDs.
        from collections import defaultdict

        per64 = defaultdict(set)
        for addr, _ in observations:
            per64[addr >> 64].add(addr & ((1 << 64) - 1))
        assert any(len(iids) > 1 for iids in per64.values())

    def test_prefix_only_output(self, built):
        cdn = cdn_seed(built, 32)
        assert cdn.prefixes and not cdn.addresses

    def test_k32_finer_than_k256(self, built):
        observations = cdn_observations(built)
        k32 = cdn_seed(built, 32, observations)
        k256 = cdn_seed(built, 256, observations)
        assert len(k32) >= len(k256)

    def test_first_isp_dominates_cdn_view(self, built):
        """The WWW-fraction bias: CDN aggregates concentrate in ISP 0."""
        cdn = cdn_seed(built, 32)
        first_isp = built.truth.ases[built.cpe_asns[0]].prefixes[0]
        second_isp = built.truth.ases[built.cpe_asns[1]].prefixes[0]
        in_first = sum(1 for p in cdn.prefixes if first_isp.covers(p))
        in_second = sum(1 for p in cdn.prefixes if second_isp.covers(p))
        assert in_first > in_second


class TestSixGen:
    def test_no_cpe_in_seed_interfaces(self, built):
        """6Gen is seeded with BGP-probing results, which never include
        customer-premises routers."""
        sixgen = sixgen_seed(built, budget=5000)
        cpe_addrs = {
            addr
            for addr, router in built.truth.router_addresses.items()
            if router.role is RouterRole.CPE
        }
        overlap = cpe_addrs & set(sixgen.addresses)
        # Loose-mode cross products could coincidentally hit CPE space,
        # but the seeds themselves must not be CPE addresses; allow a tiny
        # accidental overlap.
        assert len(overlap) < len(cpe_addrs) * 0.01 + 5

    def test_budget_respected(self, built):
        assert len(sixgen_seed(built, budget=2000)) <= 2000


class TestTum:
    def test_subsets_shape(self, built):
        subsets = tum_subsets(built)
        assert {"rapid7-dnsany", "ct", "traceroute", "caida-dnsnames"} <= set(subsets)

    def test_union_unique(self, built):
        tum = tum_seed(built)
        assert len(tum.addresses) == len(set(tum.addresses))

    def test_traceroute_subset_biased_to_second_isp(self, built):
        subsets = tum_subsets(built)
        first, second = built.cpe_asns[:2]
        per_asn = {first: 0, second: 0}
        for addr in subsets["traceroute"]:
            router = built.truth.router_addresses.get(addr)
            if router is not None and router.asn in per_asn and router.role is RouterRole.CPE:
                per_asn[router.asn] += 1
        assert per_asn[second] > per_asn[first]


class TestRandom:
    def test_count_and_routed(self, built):
        seeds = random_seed(built, count=500)
        assert len(seeds) == 500
        assert all(
            built.truth.bgp.covers(addr) for addr in seeds.addresses
        )

    def test_deterministic(self, built):
        assert random_seed(built, 100).addresses == random_seed(built, 100).addresses


class TestBuildAll:
    def test_all_sources_present(self, all_seeds):
        expected = {
            "caida",
            "dnsdb",
            "fiebig",
            "fdns_any",
            "cdn-k256",
            "cdn-k32",
            "6gen",
            "tum",
            "random",
        }
        assert set(all_seeds) == expected

    def test_nonempty(self, all_seeds):
        for name, seed_list in all_seeds.items():
            assert len(seed_list) > 0, name
