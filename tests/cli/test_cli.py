"""End-to-end tests for the repro-sim CLI workflow."""

import io
import json

import pytest

from repro.cli.main import main
from repro.cli.worldcfg import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.netsim import InternetConfig, VantageConfig


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture()
def world_file(tmp_path):
    path = str(tmp_path / "world.json")
    code, text = run(["world", "--edge", "30", "--cpe", "150", "--seed", "5", "--out", path])
    assert code == 0
    return path


class TestWorldConfig:
    def test_round_trip(self):
        config = InternetConfig(
            n_edge=10,
            cpe_customers_per_isp=50,
            vantages=(VantageConfig("X", premise_hops=4, aggressive_hops=(2,)),),
        )
        restored = config_from_dict(config_to_dict(config))
        assert restored == config

    def test_json_round_trip(self, tmp_path):
        config = InternetConfig(n_edge=7)
        path = tmp_path / "cfg.json"
        with open(path, "w") as sink:
            save_config(sink, config)
        with open(path) as source:
            restored = load_config(source)
        assert restored == config
        # The file is plain JSON.
        assert json.loads(path.read_text())["n_edge"] == 7

    def test_world_command_output(self, world_file, tmp_path):
        data = json.loads(open(world_file).read())
        assert data["n_edge"] == 30
        assert data["seed"] == 5


class TestPipeline:
    def test_seeds_targets_probe_analyze(self, world_file, tmp_path):
        seeds_path = str(tmp_path / "caida.seeds")
        code, text = run(
            ["seeds", "--world", world_file, "--source", "caida", "--out", seeds_path]
        )
        assert code == 0
        assert "caida" in text
        lines = [l for l in open(seeds_path) if l.strip()]
        assert lines and all("/" in line for line in lines)  # prefix seeds

        targets_path = str(tmp_path / "caida.targets")
        code, text = run(
            ["targets", "--seeds", seeds_path, "--level", "64", "--out", targets_path]
        )
        assert code == 0
        target_lines = [l.strip() for l in open(targets_path) if l.strip()]
        assert target_lines
        assert all("/" not in line for line in target_lines)

        results_path = str(tmp_path / "run.yrp6")
        code, text = run(
            [
                "probe",
                "--world", world_file,
                "--vantage", "EU-NET",
                "--targets", targets_path,
                "--pps", "1000",
                "--fill",
                "--out", results_path,
            ]
        )
        assert code == 0
        assert "interfaces" in text

        code, text = run(
            ["analyze", "--results", results_path, "--world", world_file, "--subnets", "--graph"]
        )
        assert code == 0
        assert "unique interfaces" in text
        assert "interface graph" in text
        assert "subnets:" in text

    def test_unknown_seed_source(self, world_file, tmp_path):
        code, text = run(
            [
                "seeds",
                "--world", world_file,
                "--source", "nope",
                "--out", str(tmp_path / "x"),
            ]
        )
        assert code == 2
        assert "unknown source" in text

    def test_probe_other_probers(self, world_file, tmp_path):
        seeds_path = str(tmp_path / "s")
        run(["seeds", "--world", world_file, "--source", "caida", "--out", seeds_path])
        targets_path = str(tmp_path / "t")
        run(["targets", "--seeds", seeds_path, "--out", targets_path])
        for prober in ("sequential", "doubletree"):
            results = str(tmp_path / ("%s.yrp6" % prober))
            code, text = run(
                [
                    "probe",
                    "--world", world_file,
                    "--targets", targets_path,
                    "--prober", prober,
                    "--out", results,
                ]
            )
            assert code == 0, text

    def test_probe_workers_deterministic(self, world_file, tmp_path):
        """--workers N probes every (target, TTL) pair exactly once and is
        reproducible run-to-run.  (Bit-equality with --workers 1 holds only
        for decoupled worlds — the default world rate-limits, so shards
        legitimately see different limiter state; see docs/architecture.md.)
        """
        seeds_path = str(tmp_path / "s")
        run(["seeds", "--world", world_file, "--source", "caida", "--out", seeds_path])
        targets_path = str(tmp_path / "t")
        run(["targets", "--seeds", seeds_path, "--out", targets_path])
        n_targets = len([l for l in open(targets_path) if l.strip()])

        outputs = []
        for name in ("a.yrp6", "b.yrp6"):
            path = str(tmp_path / name)
            code, text = run(
                [
                    "probe",
                    "--world", world_file,
                    "--targets", targets_path,
                    "--workers", "2",
                    "--out", path,
                ]
            )
            assert code == 0, text
            assert "%d probes" % (n_targets * 16) in text  # full coverage
            outputs.append(open(path).read())
        assert outputs[0] == outputs[1]
        assert outputs[0].strip()  # responses actually recorded

    def test_probe_workers_requires_yarrp6(self, world_file, tmp_path):
        targets = tmp_path / "t"
        targets.write_text("2001:db8::1\n")
        code, text = run(
            [
                "probe",
                "--world", world_file,
                "--targets", str(targets),
                "--prober", "sequential",
                "--workers", "2",
                "--out", str(tmp_path / "out"),
            ]
        )
        assert code == 2
        assert "yarrp6" in text

    def test_empty_targets_rejected(self, world_file, tmp_path):
        empty = tmp_path / "empty"
        empty.write_text("# nothing\n")
        code, text = run(
            [
                "probe",
                "--world", world_file,
                "--targets", str(empty),
                "--out", str(tmp_path / "out"),
            ]
        )
        assert code == 2

    def test_probe_metrics_writes_manifest(self, world_file, tmp_path):
        from repro.obs import MANIFEST_FORMAT, read_manifest

        seeds_path = str(tmp_path / "s")
        run(["seeds", "--world", world_file, "--source", "caida", "--out", seeds_path])
        targets_path = str(tmp_path / "t")
        run(["targets", "--seeds", seeds_path, "--out", targets_path])
        results = str(tmp_path / "run.yrp6")
        manifest_path = str(tmp_path / "run.manifest.json")
        code, text = run(
            [
                "probe",
                "--world", world_file,
                "--targets", targets_path,
                "--out", results,
                "--metrics", manifest_path,
            ]
        )
        assert code == 0, text
        assert manifest_path in text
        manifest = read_manifest(manifest_path)
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["seed"] == 5  # the world's seed, from the file
        assert manifest["records_file"] == results
        assert manifest["wallclock"]["seconds"] >= 0
        assert manifest["world"]["n_edge"] == 30
        assert manifest["run"]["sent"] > 0
        assert manifest["metrics"]["prober.sent"]["value"] == manifest["run"]["sent"]
        # Telemetry changed nothing: the records match a plain run.
        plain = str(tmp_path / "plain.yrp6")
        run(["probe", "--world", world_file, "--targets", targets_path, "--out", plain])
        assert open(results).read() == open(plain).read()

    def test_probe_workers_metrics_manifest_is_merged(self, world_file, tmp_path):
        from repro.obs import read_manifest

        seeds_path = str(tmp_path / "s")
        run(["seeds", "--world", world_file, "--source", "caida", "--out", seeds_path])
        targets_path = str(tmp_path / "t")
        run(["targets", "--seeds", seeds_path, "--out", targets_path])
        manifest_path = str(tmp_path / "par.manifest.json")
        code, text = run(
            [
                "probe",
                "--world", world_file,
                "--targets", targets_path,
                "--workers", "2",
                "--out", str(tmp_path / "par.yrp6"),
                "--metrics", manifest_path,
            ]
        )
        assert code == 0, text
        manifest = read_manifest(manifest_path)
        assert manifest["run"]["workers"] == 2
        metrics = manifest["metrics"]
        assert metrics["prober.sent"]["value"] == manifest["run"]["sent"]
        # Per-process diagnostics are dropped from the merged dump.
        assert not any(name.startswith("engine.") for name in metrics)

    def test_stats_renders_manifest(self, world_file, tmp_path):
        seeds_path = str(tmp_path / "s")
        run(["seeds", "--world", world_file, "--source", "caida", "--out", seeds_path])
        targets_path = str(tmp_path / "t")
        run(["targets", "--seeds", seeds_path, "--out", targets_path])
        manifest_path = str(tmp_path / "m.json")
        run(
            [
                "probe",
                "--world", world_file,
                "--targets", targets_path,
                "--out", str(tmp_path / "r.yrp6"),
                "--metrics", manifest_path,
            ]
        )
        code, text = run(["stats", manifest_path])
        assert code == 0
        assert "seed" in text
        assert "wall seconds" in text
        assert "prober.sent" in text
        assert "campaign.sent" in text  # the series table

    def test_stats_rejects_missing_or_malformed(self, tmp_path):
        code, text = run(["stats", str(tmp_path / "nope.json")])
        assert code == 2
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "other/1"}\n')
        code, text = run(["stats", str(bad)])
        assert code == 2
        assert "repro-manifest/1" in text

    def test_subnets_requires_world(self, world_file, tmp_path):
        seeds_path = str(tmp_path / "s")
        run(["seeds", "--world", world_file, "--source", "caida", "--out", seeds_path])
        targets_path = str(tmp_path / "t")
        run(["targets", "--seeds", seeds_path, "--out", targets_path])
        results = str(tmp_path / "r.yrp6")
        run(
            ["probe", "--world", world_file, "--targets", targets_path, "--out", results]
        )
        code, text = run(["analyze", "--results", results, "--subnets"])
        assert code == 2
        assert "--world" in text


class TestProfile:
    def _pipeline(self, world_file, tmp_path):
        seeds_path = str(tmp_path / "s")
        run(["seeds", "--world", world_file, "--source", "caida", "--out", seeds_path])
        targets_path = str(tmp_path / "t")
        run(["targets", "--seeds", seeds_path, "--out", targets_path])
        return targets_path

    def test_probe_profile_writes_trace_report_and_manifest(
        self, world_file, tmp_path
    ):
        from repro.obs import read_manifest

        targets_path = self._pipeline(world_file, tmp_path)
        results = str(tmp_path / "prof.yrp6")
        trace_path = str(tmp_path / "trace.json")
        manifest_path = str(tmp_path / "prof.manifest.json")
        code, text = run(
            [
                "probe",
                "--world", world_file,
                "--targets", targets_path,
                "--out", results,
                "--metrics", manifest_path,
                "--profile", trace_path,
            ]
        )
        assert code == 0, text
        assert "Perfetto trace -> %s" % trace_path in text
        assert "self%" in text  # the phase-tree report
        with open(trace_path) as source:
            document = json.load(source)
        names = {e.get("name") for e in document["traceEvents"] if e["ph"] == "X"}
        assert "probe" in names
        assert "campaign.run" in names
        manifest = read_manifest(manifest_path)
        profile = manifest["wallclock"]["profile"]
        assert profile["coverage"] >= 0.95
        assert "probe" in {row["path"] for row in profile["phases"]}
        # Profiling is observe-only: the records match an unprofiled run.
        plain = str(tmp_path / "plain.yrp6")
        run(["probe", "--world", world_file, "--targets", targets_path, "--out", plain])
        assert open(results, "rb").read() == open(plain, "rb").read()

    def test_probe_profile_with_workers_covers_the_pool(
        self, world_file, tmp_path
    ):
        from repro.obs import read_manifest

        targets_path = self._pipeline(world_file, tmp_path)
        trace_path = str(tmp_path / "par-trace.json")
        manifest_path = str(tmp_path / "par.manifest.json")
        code, text = run(
            [
                "probe",
                "--world", world_file,
                "--targets", targets_path,
                "--workers", "2",
                "--out", str(tmp_path / "par.yrp6"),
                "--metrics", manifest_path,
                "--profile", trace_path,
            ]
        )
        assert code == 0, text
        profile = read_manifest(manifest_path)["wallclock"]["profile"]
        paths = {row["path"] for row in profile["phases"]}
        assert "probe/parallel" in paths
        assert "probe/parallel/merge" in paths
        assert profile["coverage"] >= 0.95

    def test_probe_profile_shardsan_conflict(self, world_file, tmp_path):
        targets_path = self._pipeline(world_file, tmp_path)
        code, text = run(
            [
                "probe",
                "--world", world_file,
                "--targets", targets_path,
                "--out", str(tmp_path / "r.yrp6"),
                "--profile", str(tmp_path / "trace.json"),
                "--shardsan",
            ]
        )
        assert code == 2
        assert "mutually exclusive" in text

    def test_stats_top_renders_ttl_and_phase_tables(self, world_file, tmp_path):
        targets_path = self._pipeline(world_file, tmp_path)
        manifest_path = str(tmp_path / "m.json")
        run(
            [
                "probe",
                "--world", world_file,
                "--targets", targets_path,
                "--out", str(tmp_path / "r.yrp6"),
                "--metrics", manifest_path,
                "--profile", str(tmp_path / "trace.json"),
            ]
        )
        code, text = run(["stats", manifest_path, "--top", "3"])
        assert code == 0
        assert "top 3 TTL yield" in text
        assert "top 3 profiler phases by self time" in text

    def test_stats_top_without_profile_skips_phase_table(
        self, world_file, tmp_path
    ):
        targets_path = self._pipeline(world_file, tmp_path)
        manifest_path = str(tmp_path / "m.json")
        run(
            [
                "probe",
                "--world", world_file,
                "--targets", targets_path,
                "--out", str(tmp_path / "r.yrp6"),
                "--metrics", manifest_path,
            ]
        )
        code, text = run(["stats", manifest_path, "--top", "2"])
        assert code == 0
        assert "top 2 TTL yield" in text
        assert "profiler phases" not in text


class TestAllocSan:
    def _pipeline(self, world_file, tmp_path):
        seeds_path = str(tmp_path / "s")
        run(["seeds", "--world", world_file, "--source", "caida", "--out", seeds_path])
        targets_path = str(tmp_path / "t")
        run(["targets", "--seeds", seeds_path, "--out", targets_path])
        return targets_path

    def test_probe_allocsan_clean_run_writes_report(self, world_file, tmp_path):
        targets_path = self._pipeline(world_file, tmp_path)
        results = str(tmp_path / "alloc.yrp6")
        report_path = str(tmp_path / "allocsan.json")
        code, text = run(
            [
                "probe",
                "--world", world_file,
                "--targets", targets_path,
                "--out", results,
                "--allocsan",
                "--allocsan-report", report_path,
            ]
        )
        assert code == 0, text
        assert "allocsan: clean" in text
        report = json.loads(open(report_path).read())
        assert report["sanitizer"] == "allocsan"
        assert set(report["tracked"]) == {
            "allocsan.bytes_per_probe",
            "allocsan.blocks_per_batch",
        }
        assert report["probes"] > 0
        # Sanitizing is observe-only: the records match a plain run.
        plain = str(tmp_path / "plain.yrp6")
        run(["probe", "--world", world_file, "--targets", targets_path, "--out", plain])
        assert open(results, "rb").read() == open(plain, "rb").read()

    def test_probe_allocsan_blown_budget_fails(
        self, world_file, tmp_path, monkeypatch
    ):
        from repro.lint import allocsan as allocsan_mod

        monkeypatch.setattr(
            allocsan_mod,
            "DEFAULT_BUDGETS",
            {"allocsan.bytes_per_probe": 0.0},
        )
        targets_path = self._pipeline(world_file, tmp_path)
        code, text = run(
            [
                "probe",
                "--world", world_file,
                "--targets", targets_path,
                "--out", str(tmp_path / "blown.yrp6"),
                "--allocsan",
            ]
        )
        assert code == 1, text
        assert "exceeds budget" in text
        assert "budget violation" in text

    def test_probe_allocsan_conflicts(self, world_file, tmp_path):
        targets_path = self._pipeline(world_file, tmp_path)
        base = [
            "probe",
            "--world", world_file,
            "--targets", targets_path,
            "--out", str(tmp_path / "x.yrp6"),
        ]
        code, text = run(base + ["--allocsan", "--detsan"])
        assert code == 2 and "mutually exclusive" in text
        code, text = run(base + ["--allocsan", "--profile", str(tmp_path / "t.json")])
        assert code == 2 and "mutually exclusive" in text
        code, text = run(base + ["--allocsan", "--workers", "2"])
        assert code == 2 and "--workers 1" in text
        code, text = run(base + ["--allocsan-report", str(tmp_path / "r.json")])
        assert code == 2 and "requires --allocsan" in text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            run([])

    def test_version(self):
        with pytest.raises(SystemExit) as excinfo:
            run(["--version"])
        assert excinfo.value.code == 0
