#!/usr/bin/env python3
"""Quickstart: build an internet, make targets, run Yarrp6, look at paths.

This walks the library's core loop end to end in under a minute:

1. generate a deterministic ground-truth IPv6 internet;
2. synthesize a hitlist (the CAIDA-style BGP seed) and turn it into probe
   targets with the three-step pipeline (seeds -> zn -> IID synthesis);
3. run a stateless randomized Yarrp6 campaign in virtual time;
4. reassemble traces and print what was discovered.

Run:  python examples/quickstart.py
"""

from repro.addrs import format_address
from repro.analysis import build_traces, path_length_stats, response_mix
from repro.hitlist import make_targets
from repro.netsim import Internet, InternetConfig
from repro.prober import run_yarrp6
from repro.seeds import caida_seed


def main() -> None:
    # 1. A small world: ~60 edge ASes, two residential CPE ISPs.
    internet = Internet(
        config=InternetConfig(n_edge=60, cpe_customers_per_isp=500, seed=42)
    )
    truth = internet.truth
    print(
        "built internet: %d ASes, %d routers, %d leaf /64s"
        % (len(truth.ases), len(truth.routers), len(truth.subnets))
    )

    # 2. Targets: one fixed-IID probe address per advertised BGP prefix,
    #    normalized to /64 granularity.
    seeds = caida_seed(internet.built)
    targets = make_targets("caida", seeds.items, level=64, method="fixediid")
    print("target set %s: %d addresses" % (targets.name, len(targets)))

    # 3. Probe at 1 kpps with a max TTL of 16 and fill mode on — the
    #    paper's campaign settings.  Virtual time makes this instant.
    result = run_yarrp6(
        internet, "US-EDU-1", targets.addresses, pps=1000, max_ttl=16, fill=True
    )
    print(
        "campaign: %d probes (%d fills) in %.1f virtual seconds"
        % (result.sent, result.summary["fills"], result.duration_us / 1e6)
    )
    print(
        "discovered %d unique router interface addresses"
        % len(result.interfaces)
    )
    print("response mix:")
    for label, fraction in sorted(response_mix(result).items()):
        print("  %-30s %5.1f%%" % (label, 100 * fraction))

    # 4. Traces: per-target paths recovered from the unordered stream.
    traces = build_traces(result.records)
    median, mean, p95 = path_length_stats(traces.values())
    print(
        "paths: median %d hops, mean %.1f, 95th percentile %d"
        % (median, mean, p95)
    )
    target, trace = max(traces.items(), key=lambda item: item[1].path_length)
    print("longest trace, toward %s:" % format_address(target))
    for ttl, hop in enumerate(trace.path, start=1):
        print(
            "  %2d  %s" % (ttl, format_address(hop) if hop is not None else "*")
        )


if __name__ == "__main__":
    main()
