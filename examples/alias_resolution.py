#!/usr/bin/env python3
"""From interfaces to routers: speedtrap alias resolution end to end.

The paper's §7.2 next step, run as a pipeline:

1. a Yarrp6 campaign discovers interface addresses;
2. speedtrap lures each address into RFC 6946 atomic-fragment mode with
   an under-1280 Packet Too Big, then samples the router-wide fragment
   Identification counter across interleaved rounds;
3. monotonic-sequence clustering groups interfaces sharing one counter;
4. the interface-level graph collapses into a router-level graph,
   graded against the simulator's ground truth.

Run:  python examples/alias_resolution.py
"""

from repro.addrs import format_address
from repro.analysis import (
    build_traces,
    graph_summary,
    interface_graph,
    resolve_aliases,
    router_graph,
    score_against_truth,
    truth_clusters_for,
)
from repro.hitlist import make_targets
from repro.netsim import Internet, InternetConfig
from repro.prober import run_speedtrap, run_yarrp6
from repro.seeds import tum_seed


def main() -> None:
    internet = Internet(
        config=InternetConfig(n_edge=80, cpe_customers_per_isp=600, seed=12)
    )

    # 1. Discover interfaces.
    targets = make_targets("tum", tum_seed(internet.built).items, 64, "fixediid")
    campaign = run_yarrp6(
        internet, "US-EDU-1", targets.addresses, pps=1000, max_ttl=16, fill=True
    )
    print("campaign discovered %d interface addresses" % len(campaign.interfaces))

    # 2./3. Sample fragment IDs and cluster.
    internet.reset_dynamics()
    machine = run_speedtrap(internet, "US-EDU-1", sorted(campaign.interfaces))
    clusters = resolve_aliases(machine.samples)
    multi = sorted((c for c in clusters if len(c) > 1), key=len, reverse=True)
    print(
        "speedtrap: %d probes, %d addresses sampled, %d multi-interface routers"
        % (machine.sent, len(machine.samples), len(multi))
    )
    for cluster in multi[:3]:
        print("  aliases:", ", ".join(format_address(a) for a in sorted(cluster)))

    truth = truth_clusters_for(campaign.interfaces, internet.truth.router_addresses)
    accuracy = score_against_truth(clusters, truth)
    print(
        "vs ground truth: precision %.3f, recall %.3f (%d true alias pairs)"
        % (accuracy.precision, accuracy.recall, accuracy.true_pairs)
    )

    # 4. Router-level topology.
    traces = build_traces(campaign.records)
    interfaces = interface_graph(traces, registry=internet.truth.registry)
    routers = router_graph(interfaces, clusters)
    for label, graph in (("interface", interfaces), ("router", routers)):
        stats = graph_summary(graph)
        print(
            "%s graph: %d nodes, %d edges, %d components, mean degree %.2f"
            % (
                label,
                stats["nodes"],
                stats["edges"],
                stats["components"],
                stats["mean_degree"],
            )
        )


if __name__ == "__main__":
    main()
