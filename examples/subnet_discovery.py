#!/usr/bin/env python3
"""Inferring subnet structure from traces (the Section 6 experiment).

Probes a mixed hitlist, reassembles the traces, and runs the two subnet
inference techniques — path-divergence (discoverByPathDiv) and the
"IA hack" — then scores the candidates against the simulator's ground-
truth operator subnet plans, something the paper could only approximate
with ISP city-level data.

Run:  python examples/subnet_discovery.py
"""

from repro.addrs import format_address
from repro.analysis import (
    AsnResolver,
    build_traces,
    discover_by_path_div,
    stratified_sample,
    validate_candidates,
)
from repro.hitlist import build_suite
from repro.netsim import Internet, InternetConfig, build_internet
from repro.prober import run_yarrp6
from repro.seeds import build_all_seeds


def main() -> None:
    built = build_internet(
        InternetConfig(n_edge=120, cpe_customers_per_isp=1500, seed=3)
    )
    seeds = build_all_seeds(
        built, random_count=2000, sixgen_budget=5000, cdn_k32=2, cdn_k256=16
    )
    suite = build_suite(
        {name: seed_list.items for name, seed_list in seeds.items()}, levels=(64,)
    )

    # Probe the union of all sets: subnets are cleaved apart when targets
    # from different sources interleave (the Figure 3b effect).
    targets = sorted(
        {addr for target_set in suite.values() for addr in target_set.addresses}
    )
    internet = Internet(built)
    result = run_yarrp6(internet, "US-EDU-1", targets, pps=1000, max_ttl=16, fill=True)
    traces = build_traces(result.records)
    print(
        "probed %d targets, %d probes, %d traces with responses"
        % (len(targets), result.sent, sum(1 for t in traces.values() if t.hops))
    )

    resolver = AsnResolver(built.truth.registry, built.truth.equivalent_asns)
    candidates = discover_by_path_div(traces, resolver)
    print(
        "path divergence: %d pairs compared, %d divergent, %d candidate subnets"
        % (
            candidates.pairs_compared,
            candidates.pairs_divergent,
            len(candidates.candidate_prefixes),
        )
    )
    print(
        "IA hack: %d traces ended at a hop inside the target /64; %d "
        "confirmed ::1 gateways" % (candidates.same64_last_hop, len(candidates.ia_subnets))
    )

    histogram = candidates.length_histogram()
    print("inferred minimum prefix lengths:")
    for length in sorted(histogram):
        print("  /%2d  %5d  %s" % (length, histogram[length], "#" * min(60, histogram[length])))

    # Ground truth: the operators' distribution + allocation prefixes.
    truth = []
    for asys in built.truth.ases.values():
        truth.extend(asys.plan.distribution)
        truth.extend(asys.plan.allocations)
    report = validate_candidates(candidates, truth, traces.keys())
    print(
        "\nvalidation: %d candidates vs %d probed truth subnets -> "
        "%d exact, %d more-specific, %d one bit short"
        % (
            report.candidates,
            report.truth_probed,
            report.exact_matches,
            report.more_specific,
            report.one_bit_short,
        )
    )

    sampled = stratified_sample(traces, truth)
    sampled_candidates = discover_by_path_div(sampled, resolver)
    sampled_report = validate_candidates(sampled_candidates, truth, sampled.keys())
    print(
        "stratified rerun (one target per truth subnet): exact-match rate "
        "%.0f%% of candidates (was %.0f%%)"
        % (100 * sampled_report.exact_fraction, 100 * report.exact_fraction)
    )

    some = sorted(candidates.ia_subnets)[:5]
    if some:
        print("\nexample IA-hack /64s (customer LANs pinned exactly):")
        for prefix in some:
            print("  %s" % prefix)
            print(
                "    gateway %s"
                % format_address(built.truth.subnets[prefix.base].gateway_addr)
            )


if __name__ == "__main__":
    main()
