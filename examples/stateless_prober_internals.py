#!/usr/bin/env python3
"""Inside Yarrp6: the stateless encoding and the permutation, byte level.

Shows the machinery that makes stateless high-rate probing work:

* the 12-byte payload carrying TTL / timestamp / instance (Figure 4);
* the checksum "fudge" keeping the transport header constant per target
  (so per-flow load balancers keep every probe on one path);
* the target checksum in the source port, catching en-route rewrites;
* recovery of all probe state from an ICMPv6 Time Exceeded quotation;
* the keyed permutation that spreads (target, TTL) pairs.

Run:  python examples/stateless_prober_internals.py
"""

from repro.addrs import format_address, parse
from repro.packet import icmpv6, ipv6
from repro.prober import ProbeSchedule, decode_quotation, encode_probe

SOURCE = parse("2001:db8:ffff::100")
TARGET = parse("2a02:26f0:1:2::1")


def hexdump(data: bytes, width: int = 16) -> str:
    lines = []
    for offset in range(0, len(data), width):
        chunk = data[offset : offset + width]
        lines.append(
            "  %04x  %s" % (offset, " ".join("%02x" % byte for byte in chunk))
        )
    return "\n".join(lines)


def main() -> None:
    print("probe toward %s, TTL 7, t=123456us:" % format_address(TARGET))
    probe = encode_probe(SOURCE, TARGET, ttl=7, elapsed=123_456)
    print(hexdump(probe))

    # Constant headers: two probes for the same target differ only in the
    # hop limit byte and the payload (TTL/elapsed/fudge).
    other = encode_probe(SOURCE, TARGET, ttl=12, elapsed=999_999)
    diff = [index for index, (a, b) in enumerate(zip(probe, other)) if a != b]
    print("\nbytes differing between TTL=7 and TTL=12 probes: %s" % diff)
    print("  (offset 7 is the IPv6 hop limit; 53+ are payload TTL/time/fudge —")
    print("   the ICMPv6 checksum at offsets 42-43 is identical by fudge)")

    # A router five hops out lets the hop limit expire and quotes us.
    error = icmpv6.time_exceeded(probe)
    reply = ipv6.build_packet(
        ipv6.IPv6Header(parse("2001:db8:aaaa::1"), SOURCE, 0, ipv6.PROTO_ICMPV6),
        error.pack(parse("2001:db8:aaaa::1"), SOURCE),
    )
    header, payload = ipv6.split_packet(reply)
    message = icmpv6.ICMPv6Message.unpack(payload)
    decoded = decode_quotation(message.quotation)
    print("\nrecovered from the quotation, with zero prober-side state:")
    print("  target   %s" % format_address(decoded.target))
    print("  TTL      %d" % decoded.ttl)
    print("  sent at  %dus  (RTT computable on receipt)" % decoded.elapsed)
    print("  rewritten en route? %s" % decoded.target_modified)

    # A middlebox rewriting the destination is caught by the address
    # checksum riding in the source-port field.
    mangled = bytearray(probe)
    mangled[39] ^= 0xFF
    tampered = decode_quotation(bytes(mangled))
    print("  after destination rewrite: target_modified=%s" % tampered.target_modified)

    # The permutation: every (target, TTL) pair exactly once, shuffled.
    schedule = ProbeSchedule(n_targets=6, ttl_min=1, ttl_max=4, key=0xBEEF)
    print("\npermuted walk of a 6-target x TTL 1..4 space:")
    print(
        "  "
        + " ".join("t%d/%d" % (target, ttl) for target, ttl in schedule)
    )
    pairs = list(schedule)
    assert len(set(pairs)) == len(pairs) == 24
    print("  (24 pairs, each exactly once)")


if __name__ == "__main__":
    main()
