#!/usr/bin/env python3
"""Which hitlist finds the most topology?  (The Figure 7 experiment.)

Builds every synthetic seed source, runs the target pipeline at z64, and
races the resulting sets against each other from one vantage, printing
each set's discovery curve and final standing — breadth (BGP/ASN
coverage) versus depth (subnet-level discovery, EUI-64 CPE).

Run:  python examples/target_power.py
"""

from repro.analysis import discovery_curve, eui64_share
from repro.analysis.targetsets import characterize_results
from repro.hitlist import build_suite
from repro.netsim import Internet, InternetConfig, build_internet
from repro.prober import run_yarrp6
from repro.seeds import build_all_seeds

SETS = (
    "caida-z64",
    "fiebig-z64",
    "fdns_any-z64",
    "dnsdb-z64",
    "cdn-k256-z64",
    "cdn-k32-z64",
    "6gen-z64",
    "tum-z64",
    "random-z64",
)


def main() -> None:
    built = build_internet(
        InternetConfig(
            n_edge=150,
            cpe_customers_per_isp=4000,
            leaves_per_alloc=(1, 2),
            seed=11,
        )
    )
    seeds = build_all_seeds(
        built, random_count=3000, sixgen_budget=8000, cdn_k32=2, cdn_k256=16
    )
    suite = build_suite(
        {name: seed_list.items for name, seed_list in seeds.items()}, levels=(64,)
    )

    results = {}
    for name in SETS:
        internet = Internet(built)
        results[name] = run_yarrp6(
            internet, "EU-NET", suite[name].addresses, pps=1000, max_ttl=16
        )

    features = characterize_results(results, built.truth.registry)
    print(
        "%-14s %8s %8s %7s %6s %6s %7s"
        % ("set", "targets", "probes", "ifaces", "pfx", "asns", "eui64")
    )
    for name in sorted(SETS, key=lambda n: len(results[n].interfaces), reverse=True):
        result = results[name]
        print(
            "%-14s %8d %8d %7d %6d %6d %6.0f%%"
            % (
                name,
                result.targets,
                result.sent,
                len(result.interfaces),
                len(features[name].bgp_prefixes),
                len(features[name].asns),
                100 * eui64_share(result.interfaces),
            )
        )

    print("\ndiscovery curves (probes -> unique interfaces):")
    for name in ("caida-z64", "random-z64", "cdn-k32-z64", "tum-z64"):
        points = discovery_curve(results[name], points=8)
        series = ", ".join("%d:%d" % (sent, unique) for sent, unique in points)
        print("  %-14s %s" % (name, series))

    print(
        "\nReading: BGP-guided breadth (caida) exhausts quickly; the\n"
        "client-space and collection lists (cdn-k32, tum) keep finding\n"
        "new routers — and different CPE fleets — all the way down."
    )


if __name__ == "__main__":
    main()
