#!/usr/bin/env python3
"""Finding the tunnels: a path-MTU census of the simulated internet.

IPv6 transition mechanisms (6to4 relays at the 1280-byte floor, 6in4
tunnels at 1480) leave an MTU fingerprint on every path that crosses
them.  This example runs classic PMTUD (full-size probe, read the
Packet Too Big, retry smaller) across a target sample and tabulates the
result — then names the bottleneck hops.

Run:  python examples/pmtu_census.py
"""

from collections import Counter

from repro.addrs import format_address
from repro.netsim import Internet, InternetConfig
from repro.prober.pmtud import PMTUDConfig, discover_pmtu, mtu_census


def main() -> None:
    internet = Internet(
        config=InternetConfig(
            n_edge=80, cpe_customers_per_isp=300, seed=31, tunnel_fraction=0.15
        )
    )
    targets = []
    for subnet in internet.truth.subnets.values():
        if subnet.host_iids:
            targets.append(subnet.host_addresses()[0])
        if len(targets) >= 120:
            break

    results = discover_pmtu(internet, "US-EDU-1", targets, PMTUDConfig())
    census = mtu_census(results)
    total = sum(census.values())
    print("path MTU census over %d targets (%d resolved):" % (len(targets), total))
    for mtu in sorted(census, reverse=True):
        share = census[mtu] / total
        label = {1500: "native", 1480: "6in4 tunnel", 1280: "6to4 floor"}.get(mtu, "?")
        print(
            "  %4d bytes  %4d paths  %5.1f%%  %-12s %s"
            % (mtu, census[mtu], 100 * share, label, "#" * census[mtu])
        )

    bottlenecks = Counter(
        result.bottleneck_hop
        for result in results.values()
        if result.bottleneck_hop is not None
    )
    if bottlenecks:
        print("\nbusiest bottleneck hops (tunnel ingresses):")
        for hop, count in bottlenecks.most_common(5):
            print("  %-40s constrains %d paths" % (format_address(hop), count))

    rounds = Counter(result.rounds for result in results.values())
    print("\nconvergence: %s" % ", ".join(
        "%d paths in %d round%s" % (count, r, "s" if r > 1 else "")
        for r, count in sorted(rounds.items())
    ))


if __name__ == "__main__":
    main()
