#!/usr/bin/env python3
"""Why randomize?  Sequential vs Yarrp6 under ICMPv6 rate limiting.

Reproduces the Figure 5 experiment interactively: the same target list is
probed with a scamper-style sequential tracer and with Yarrp6 at rising
packet rates, and the per-hop response fraction is plotted as text bars.
Watch the sequential tracer's first hops go dark at 1k+ pps while the
randomized walk stays bright.

Run:  python examples/rate_limiting_study.py
"""

import random

from repro.analysis import per_hop_responsiveness
from repro.hitlist import fixediid, zn
from repro.netsim import Internet, InternetConfig
from repro.prober import run_sequential, run_yarrp6

MAX_TTL = 16
RATES = (20, 1000, 2000)


def bar(fraction: float, width: int = 30) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    internet = Internet(
        config=InternetConfig(n_edge=120, cpe_customers_per_isp=800, seed=7)
    )

    # An Ark-style list: the fixed-IID target plus several random /64s
    # per advertised prefix, so the per-TTL waves are long enough to
    # drain token buckets.
    rng = random.Random(1)
    prefixes = zn(
        [p for p, _ in internet.truth.bgp.items() if p.length <= 48], 48
    )
    targets = list(fixediid(prefixes))
    for prefix in prefixes:
        for _ in range(8):
            targets.append(prefix.random_subnet(64, rng).base | 0x1234)
    targets = sorted(set(targets))
    print("probing %d targets from US-EDU-1\n" % len(targets))

    for rate in RATES:
        yarrp = run_yarrp6(internet, "US-EDU-1", targets, pps=rate, max_ttl=MAX_TTL)
        seq = run_sequential(internet, "US-EDU-1", targets, pps=rate, max_ttl=MAX_TTL)
        yarrp_hops = dict(per_hop_responsiveness(yarrp, MAX_TTL))
        seq_hops = dict(per_hop_responsiveness(seq, MAX_TTL))
        print("=== %d pps ===" % rate)
        print("hop  %-32s %-32s" % ("sequential", "yarrp6 (randomized)"))
        for hop in range(1, 9):
            print(
                " %2d  %s %.2f   %s %.2f"
                % (hop, bar(seq_hops[hop]), seq_hops[hop], bar(yarrp_hops[hop]), yarrp_hops[hop])
            )
        print(
            "interfaces: sequential %d, yarrp6 %d\n"
            % (len(seq.interfaces), len(yarrp.interfaces))
        )

    print(
        "The mandated ICMPv6 token buckets (RFC 4443) refill at a fixed\n"
        "rate: the sequential tracer's synchronized per-TTL waves exhaust\n"
        "them, while the randomized permutation spreads each hop's load\n"
        "to ~rate/max_ttl packets per second."
    )


if __name__ == "__main__":
    main()
