#!/usr/bin/env python3
"""Load-balanced paths: why Yarrp6 fudges its checksum, and how to
enumerate the paths it deliberately avoids.

Deployed IPv6 routers hash the ICMPv6 *checksum* when balancing flows
(Almeida et al. 2017).  Yarrp6 therefore pins every probe for a target
to one checksum value — one path.  This example flips that knob the
other way: an MDA-style sweep varies the fudged checksum constant per
flow and enumerates the parallel interfaces each hop exposes.

Run:  python examples/multipath_enumeration.py
"""

from collections import Counter

from repro.addrs import format_address
from repro.netsim import Internet, InternetConfig
from repro.prober.mda import MDAConfig, run_mda


def main() -> None:
    internet = Internet(
        config=InternetConfig(n_edge=60, cpe_customers_per_isp=300, seed=19)
    )
    targets = []
    for subnet in internet.truth.subnets.values():
        targets.append(subnet.prefix.base | 0x1234)
        if len(targets) >= 60:
            break

    result = run_mda(
        internet, "US-EDU-1", targets, MDAConfig(flows=8, max_ttl=14)
    )
    divergent = result.divergent_hops()
    print(
        "%d probes over %d targets x 8 flows: %d (target, hop) positions "
        "show load balancing" % (result.sent, len(targets), len(divergent))
    )

    widths = Counter(result.width(target) for target in targets)
    print("\npath width distribution (max parallel interfaces per path):")
    for width in sorted(widths):
        print("  width %d: %4d paths  %s" % (width, widths[width], "#" * widths[width]))

    target = max(targets, key=result.width)
    print("\nwidest path, toward %s:" % format_address(target))
    for ttl in range(1, 15):
        hops = result.hop_sets.get((target, ttl), set())
        if not hops:
            continue
        print(
            "  hop %2d: %s"
            % (ttl, "  |  ".join(format_address(hop) for hop in sorted(hops)))
        )

    print(
        "\nA single-flow (Paris-stable) tracer sees exactly one column of"
        "\nthis ladder; flow variation reveals the rest — and alias"
        "\nresolution (examples/alias_resolution.py) can then tell which"
        "\nparallel interfaces belong to one router."
    )


if __name__ == "__main__":
    main()
