"""Figure 7 — Address discovery power per z64 target set.

Unique interface addresses discovered as a function of probes emitted
(log-log in the paper) from the EU-NET vantage.  The paper's reading:
the BGP-guided caida strategy does well initially, then exhausts
(breadth without depth); random flattens precipitously; 6gen mirrors
random with a fixed offset; tum and cdn-k32 keep discovering nearly
linearly — the most powerful lists.
"""

from repro.analysis import discovery_curve, render_series

Z64_SETS = (
    "random-z64",
    "6gen-z64",
    "caida-z64",
    "cdn-k256-z64",
    "cdn-k32-z64",
    "dnsdb-z64",
    "fdns_any-z64",
    "fiebig-z64",
    "tum-z64",
)

VANTAGE = "EU-NET"


def build(campaigns):
    return {name: campaigns.get(VANTAGE, name) for name in Z64_SETS}


def test_fig7(campaigns, save_result, benchmark):
    results = benchmark.pedantic(build, args=(campaigns,), rounds=1, iterations=1)
    blocks = []
    for name in Z64_SETS:
        curve = discovery_curve(results[name], points=24)
        blocks.append(
            render_series(name, curve, "probes", "unique interfaces")
        )
    save_result(
        "fig7_discovery_power",
        "Figure 7: discovery power per z64 set, vantage %s\n\n" % VANTAGE
        + "\n\n".join(blocks),
    )

    final = {name: len(results[name].interfaces) for name in Z64_SETS}
    probes = {name: results[name].sent for name in Z64_SETS}

    # cdn-k32 and tum finish on top.
    ranked = sorted(final, key=final.get, reverse=True)
    assert set(ranked[:2]) == {"cdn-k32-z64", "tum-z64"}

    # caida performs well initially but exhausts early: its final count
    # is a small fraction of the winners' despite early efficiency.
    assert final["caida-z64"] < final["cdn-k32-z64"] / 3

    def discovery_at(name, budget):
        best = 0
        for sent, unique in results[name].curve:
            if sent <= budget:
                best = unique
            else:
                break
        return best

    early_budget = max(1000, probes["caida-z64"] // 3)
    # Early on, caida's per-probe efficiency beats random's.
    assert discovery_at("caida-z64", early_budget) > discovery_at(
        "random-z64", early_budget
    )

    # random flattens: the second half of its probes yields little.
    random_mid = discovery_at("random-z64", probes["random-z64"] // 2)
    assert final["random-z64"] < random_mid * 1.6

    # tum and cdn-k32 keep a near-linear discovery rate: the second half
    # of probing still contributes substantially.
    for name in ("tum-z64", "cdn-k32-z64"):
        mid = discovery_at(name, probes[name] // 2)
        assert final[name] > mid * 1.5, name

    # 6gen flattens like random but finishes well above it (the paper's
    # fixed-offset observation; in our world the offset accrues over the
    # run rather than at the start — 6gen's clusters revisit shared
    # transit early, see EXPERIMENTS.md).
    assert final["6gen-z64"] > final["random-z64"] * 2
    sixgen_mid = discovery_at("6gen-z64", probes["6gen-z64"] // 2)
    assert final["6gen-z64"] < sixgen_mid * 2  # flattening tail
