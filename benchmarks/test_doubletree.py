"""Section 4.2 — Doubletree under ICMPv6 rate limiting.

Doubletree's stop sets save probes, but its backward walk only stops on a
*response* from a known interface: a rate-limited (silent) near hop never
satisfies the rule, so Doubletree keeps probing the very hops whose
buckets are drained — the pathology the paper observed.  Also shown: the
start-TTL sensitivity that makes the parameter a per-vantage headache.
"""

import random

from repro.analysis import render_table
from repro.hitlist import fixediid, zn
from repro.netsim import Internet
from repro.prober import DoubletreeConfig, run_doubletree, run_sequential, run_yarrp6


def fig_targets(world, seeds):
    rng = random.Random(5)
    prefixes = zn(seeds["caida"].items, 48)
    targets = list(fixediid(prefixes))
    for prefix in prefixes:
        for _ in range(4):
            targets.append(prefix.random_subnet(64, rng).base | 0x1234)
    return sorted(set(targets))


def run_trials(world, seeds):
    targets = fig_targets(world, seeds)
    out = {}
    for rate in (20.0, 2000.0):
        internet = Internet(world)
        out[("doubletree", rate)] = run_doubletree(
            internet, "US-EDU-1", targets, pps=rate,
            config=DoubletreeConfig(start_ttl=8, max_ttl=16),
        )
        out[("sequential", rate)] = run_sequential(
            internet, "US-EDU-1", targets, pps=rate
        )
        out[("yarrp6", rate)] = run_yarrp6(
            internet, "US-EDU-1", targets, pps=rate, max_ttl=16
        )
    # Start-TTL sensitivity.
    for start in (4, 8, 12):
        internet = Internet(world)
        out[("dt-start%d" % start, 1000.0)] = run_doubletree(
            internet, "US-EDU-1", targets, pps=1000.0,
            config=DoubletreeConfig(start_ttl=start, max_ttl=16),
        )
    return targets, out


def test_doubletree(world, seeds, save_result, benchmark):
    targets, out = benchmark.pedantic(
        run_trials, args=(world, seeds), rounds=1, iterations=1
    )
    rows = [
        [
            "%s @%dpps" % (kind, rate),
            result.sent,
            len(result.interfaces),
            "%.2f%%" % (100 * result.yield_per_probe),
        ]
        for (kind, rate), result in out.items()
    ]
    save_result(
        "doubletree",
        render_table(
            ["Run", "Probes", "Interfaces", "Yield"],
            rows,
            title="Section 4.2: Doubletree vs sequential vs Yarrp6 (%d traces)"
            % len(targets),
        ),
    )

    # Doubletree economizes probes relative to a full sequential sweep.
    assert out[("doubletree", 20.0)].sent < len(targets) * 16

    # At 20pps Doubletree discovers a comparable set to yarrp.
    slow_dt = len(out[("doubletree", 20.0)].interfaces)
    slow_yarrp = len(out[("yarrp6", 20.0)].interfaces)
    assert slow_dt > slow_yarrp * 0.6

    # At 2kpps Doubletree suffers: its backward walks hammer the drained
    # near hops; Yarrp6 retains far more discovery.
    fast_dt = out[("doubletree", 2000.0)]
    fast_yarrp = out[("yarrp6", 2000.0)]
    assert len(fast_yarrp.interfaces) > len(fast_dt.interfaces)

    # The backward-walk pathology: rate-limited (silent) near hops never
    # satisfy the stop rule, so the backward walk runs longer at speed
    # than at 20 pps, continuing to drain the very buckets that are empty.
    slow = out[("doubletree", 20.0)]
    assert fast_dt.sent > slow.sent

    # Start-TTL sensitivity: the three start values yield measurably
    # different probe budgets (the heuristic must be tuned per vantage).
    sents = {start: out[("dt-start%d" % start, 1000.0)].sent for start in (4, 8, 12)}
    assert len(set(sents.values())) == 3
