"""Section 6 — Subnet inference validated against ground truth.

The netsim ground truth *is* the operator subnet plan the paper could
only approximate with ISP city-level data: distribution and allocation
prefixes per AS.  We validate discoverByPathDiv's candidates against it,
then rerun on a stratified sample (one target per truth subnet) — the
paper's fidelity-reduction that keeps discovery at truth granularity and
lifts the exact-match rate.
"""

from repro.analysis import (
    AsnResolver,
    build_traces,
    discover_by_path_div,
    render_table,
    stratified_sample,
    validate_candidates,
)
from benchmarks.conftest import GRID_SETS, VANTAGES


def run_validation(world, campaigns):
    resolver = AsnResolver(world.truth.registry, world.truth.equivalent_asns)
    records = []
    for set_name in GRID_SETS:
        if not set_name.endswith("z64"):
            continue
        for vantage in VANTAGES:
            records.extend(campaigns.get(vantage, set_name).records)
    traces = build_traces(records)

    truth = []
    for asys in world.truth.ases.values():
        truth.extend(asys.plan.distribution)
        truth.extend(asys.plan.allocations)

    candidates = discover_by_path_div(traces, resolver)
    full_report = validate_candidates(candidates, truth, traces.keys())

    sampled = stratified_sample(traces, truth)
    sampled_candidates = discover_by_path_div(sampled, resolver)
    sampled_report = validate_candidates(
        sampled_candidates, truth, sampled.keys()
    )
    return candidates, full_report, sampled_candidates, sampled_report


def test_subnet_validation(world, campaigns, save_result, benchmark):
    candidates, full_report, sampled_candidates, sampled_report = benchmark.pedantic(
        run_validation, args=(world, campaigns), rounds=1, iterations=1
    )
    rows = []
    for label, cand, report in (
        ("all traces", candidates, full_report),
        ("stratified sample", sampled_candidates, sampled_report),
    ):
        rows.append(
            [
                label,
                len(cand.candidate_prefixes),
                report.truth_probed,
                report.exact_matches,
                report.more_specific,
                report.one_bit_short,
                report.two_bits_short,
            ]
        )
    save_result(
        "subnet_validation",
        render_table(
            ["Run", "Candidates", "Truth probed", "Exact", "More-specific", "-1 bit", "-2 bits"],
            rows,
            title="Section 6: subnet inference vs ground-truth operator plans",
        ),
    )

    # We inferred candidates and probed a substantial share of truth
    # subnets.
    assert candidates.candidate_prefixes
    assert full_report.truth_probed > 50
    # Full-fidelity inference mostly lands *inside* truth prefixes (more
    # specific), as the paper found with intermediate "distribution"
    # truth data.
    assert full_report.more_specific + full_report.exact_matches > 0
    assert full_report.more_specific >= full_report.exact_matches
    # Stratified sampling converts depth into exact matches: the exact
    # fraction rises.
    if sampled_report.truth_probed:
        assert (
            sampled_report.exact_fraction >= full_report.exact_fraction
        )
    # Near-misses cluster within a bit or two of truth.
    assert (
        sampled_report.exact_matches
        + sampled_report.one_bit_short
        + sampled_report.two_bits_short
        + sampled_report.more_specific
        > 0
    )
