"""Figure 3 — Discriminating Prefix Length distributions.

(a) per-set DPL CDFs — how clustered each z64 target set is on its own;
(b) the same sets measured inside the combined list — interleaving from
other sets can only raise DPLs ("cleaving"), and which sets shift
quantifies their complementarity.
"""

from repro.addrs import dpl_against, dpl_cdf, dpl_map
from repro.analysis import render_cdf

Z64_SETS = (
    "caida-z64",
    "dnsdb-z64",
    "fiebig-z64",
    "fdns_any-z64",
    "cdn-k256-z64",
    "cdn-k32-z64",
    "6gen-z64",
    "tum-z64",
)

BINS = list(range(24, 65, 4))


def build(suite):
    alone = {}
    combined_universe = []
    for name in Z64_SETS:
        combined_universe.extend(suite[name].addresses)
    together = {}
    for name in Z64_SETS:
        addresses = suite[name].addresses
        alone[name] = dpl_cdf(
            [min(value, 64) for value in dpl_map(addresses).values()], BINS
        )
        combined_dpls = dpl_against(addresses, combined_universe)
        together[name] = dpl_cdf(
            [min(value, 64) for value in combined_dpls.values()], BINS
        )
    return alone, together


def test_fig3(suite, save_result, benchmark):
    alone, together = benchmark.pedantic(build, args=(suite,), rounds=1, iterations=1)
    save_result(
        "fig3a_dpl_individual",
        "Figure 3a: DPL distribution per target set (CDF)\n"
        + render_cdf(alone, "DPL"),
    )
    save_result(
        "fig3b_dpl_combined",
        "Figure 3b: DPL distribution when sets are combined (CDF)\n"
        + render_cdf(together, "DPL"),
    )

    def fraction_at(cdf, edge):
        return dict(cdf)[edge]

    # Fiebig is extremely clustered: most targets at DPL 64 (paper: >70%
    # of fiebig-z64 addresses have DPL 64, i.e. CDF at 60 is small).
    assert fraction_at(alone["fiebig-z64"], 60) < 0.5
    # CAIDA is the opposite: mostly low DPLs (breadth, no depth).
    assert fraction_at(alone["caida-z64"], 48) > 0.5
    # Combination can only shift CDFs left-to-right (DPLs rise): the
    # cumulative fraction at every bin is <= the standalone fraction.
    for name in Z64_SETS:
        for (edge, frac_alone), (_, frac_together) in zip(alone[name], together[name]):
            assert frac_together <= frac_alone + 1e-9, (name, edge)
    # Fiebig's distribution barely moves (nothing interleaves with it).
    assert abs(
        fraction_at(together["fiebig-z64"], 60) - fraction_at(alone["fiebig-z64"], 60)
    ) < 0.1
    # CAIDA's shifts right visibly (others cleave its sparse targets).
    assert (
        fraction_at(alone["caida-z64"], 48) - fraction_at(together["caida-z64"], 48)
        > 0.1
    )
