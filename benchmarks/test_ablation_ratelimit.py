"""Ablation — sensitivity of the Figure 5 result to token-bucket
provisioning.

Design choice 1 in DESIGN.md: the rate-limiter parameters are the model's
most load-bearing knobs.  We sweep the premise-hop bucket rate and show
the sequential-vs-randomized gap is robust: it appears whenever the
probing rate exceeds the bucket rate and vanishes when buckets are
provisioned above the probe rate — i.e. the reproduction's headline is
not an artifact of one parameter choice.
"""

import random

from repro.analysis import per_hop_responsiveness, render_table
from repro.hitlist import fixediid, zn
from repro.netsim import Internet, InternetConfig, VantageConfig, build_internet
from repro.prober import run_sequential, run_yarrp6

RATE = 2000.0
MAX_TTL = 16
BUCKET_RATES = (50.0, 200.0, 800.0, 4000.0)


def build_world(bucket_rate):
    return build_internet(
        InternetConfig(
            n_edge=60,
            cpe_customers_per_isp=400,
            seed=77,
            vantages=(
                VantageConfig(
                    "US-EDU-1",
                    premise_hops=3,
                    premise_limit=(bucket_rate, max(10.0, bucket_rate / 4)),
                ),
            ),
        )
    )


def targets_for(world):
    rng = random.Random(5)
    prefixes = zn(
        [prefix for prefix, _ in world.truth.bgp.items() if prefix.length <= 48],
        48,
    )
    targets = list(fixediid(prefixes))
    for prefix in prefixes:
        for _ in range(8):
            targets.append(prefix.random_subnet(64, rng).base | 0x1234)
    return sorted(set(targets))


def run_sweep():
    rows = {}
    for bucket_rate in BUCKET_RATES:
        world = build_world(bucket_rate)
        targets = targets_for(world)
        internet = Internet(world)
        yarrp = run_yarrp6(internet, "US-EDU-1", targets, pps=RATE, max_ttl=MAX_TTL)
        seq = run_sequential(internet, "US-EDU-1", targets, pps=RATE, max_ttl=MAX_TTL)
        rows[bucket_rate] = (
            dict(per_hop_responsiveness(yarrp, MAX_TTL))[1],
            dict(per_hop_responsiveness(seq, MAX_TTL))[1],
        )
    return rows


def test_ablation_ratelimit(save_result, benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_result(
        "ablation_ratelimit",
        render_table(
            ["Bucket rate (err/s)", "Yarrp6 hop-1", "Sequential hop-1"],
            [
                [int(rate), "%.2f" % yarrp, "%.2f" % seq]
                for rate, (yarrp, seq) in rows.items()
            ],
            title="Ablation: first-hop responsiveness at %d pps vs bucket rate"
            % int(RATE),
        ),
    )

    # Yarrp6's per-hop arrival rate is RATE/MAX_TTL = 125/s: it stays
    # responsive whenever buckets refill faster than that.
    assert rows[200.0][0] > 0.9
    assert rows[800.0][0] > 0.9
    # Sequential needs bucket rate >= the full probing rate to keep up;
    # the gap narrows monotonically as buckets grow.
    assert rows[200.0][1] < 0.5
    assert rows[200.0][1] < rows[800.0][1] < rows[4000.0][1]
    assert rows[4000.0][1] > 0.9  # over-provisioned buckets: gap vanishes
    # Extreme limiting hurts even Yarrp6 (50/s < 125/s arrivals).
    assert rows[50.0][0] < 0.9
    # The gap (yarrp - sequential) is positive whenever limiting binds.
    for bucket_rate in (200.0, 800.0):
        yarrp, seq = rows[bucket_rate]
        assert yarrp > seq
