"""Section 5.3 — Validation against production mapping systems.

Emulates Ark/Atlas-style production probing — sequential ICMP-Paris
traces to the ::1 of every advertised prefix (plus a random address per
prefix, as Ark does) — and compares its discovery against the paper's
methodology (Yarrp6 over the synthesized target suite) from the same
vantage.  The paper's claim: an order of magnitude more interfaces for
roughly comparable trace volume.
"""

import random

from repro.analysis import format_count, render_table
from repro.hitlist import lowbyte1, zn
from repro.netsim import Internet
from repro.prober import run_sequential
from benchmarks.conftest import GRID_SETS


def run_trials(world, seeds, campaigns):
    # Production-style: sequential traces to ::1 + one random per prefix.
    rng = random.Random(53)
    prefixes = zn(seeds["caida"].items, 48)
    production_targets = list(lowbyte1(prefixes))
    for prefix in prefixes:
        production_targets.append(prefix.random_address(rng))
    internet = Internet(world)
    production = run_sequential(
        internet, "EU-NET", sorted(set(production_targets)), pps=100
    )

    # The paper's methodology: the full z64 grid from one vantage.
    ours_interfaces = set()
    ours_traces = 0
    for set_name in GRID_SETS:
        if not set_name.endswith("z64"):
            continue
        result = campaigns.get("EU-NET", set_name)
        ours_interfaces |= result.interfaces
        ours_traces += result.traces
    return production, ours_interfaces, ours_traces


def test_validation_production(world, seeds, campaigns, save_result, benchmark):
    production, ours_interfaces, ours_traces = benchmark.pedantic(
        run_trials, args=(world, seeds, campaigns), rounds=1, iterations=1
    )
    rows = [
        [
            "production (Ark-style)",
            format_count(production.targets),
            format_count(len(production.interfaces)),
        ],
        [
            "this work (z64 suite)",
            format_count(ours_traces),
            format_count(len(ours_interfaces)),
        ],
    ]
    save_result(
        "validation_production",
        render_table(
            ["System", "Traces", "Interfaces"],
            rows,
            title="Section 5.3: discovery vs production-style BGP probing (EU-NET)",
        ),
    )

    # Our methodology discovers several-fold more interfaces...
    assert len(ours_interfaces) > 4 * len(production.interfaces)
    # ...with trace volume within the same order of magnitude (the paper:
    # ~2x the traces for ~10x the interfaces).
    assert ours_traces < 60 * production.targets
