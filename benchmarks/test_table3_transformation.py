"""Table 3 — ICMPv6 Trial Results by Transformation.

Probes the FDNS seed list at zn levels 40/48/56/64 and reports probes,
non-Time-Exceeded ("Other ICMPv6") responses, discovered interface
addresses, and the interfaces found *exclusively* at each level.  The
paper's findings: finer transformation costs more probes but discovers
more — and some interfaces appear only at z64; the other-ICMPv6 *rate*
rises with depth (probes reaching further into networks).
"""

from repro.analysis import format_count, render_table, transformation_table
from repro.hitlist import make_targets
from repro.netsim import Internet
from repro.prober import run_yarrp6

LEVELS = (40, 48, 56, 64)


def run_trials(world, seeds):
    results = {}
    for level in LEVELS:
        targets = make_targets("fdns_any", seeds["fdns_any"].items, level, "fixediid")
        internet = Internet(world)
        results[level] = run_yarrp6(
            internet, "US-EDU-1", targets.addresses, pps=1000, max_ttl=16
        )
    return transformation_table(results)


def test_table3(world, seeds, save_result, benchmark):
    rows = benchmark.pedantic(run_trials, args=(world, seeds), rounds=1, iterations=1)
    save_result(
        "table3_transformation",
        render_table(
            ["zn", "Probes", "Other ICMPv6", "Other/Probe", "Addrs", "Excl Addrs"],
            [
                [
                    "/%d" % row["zn"],
                    format_count(row["probes"]),
                    format_count(row["other_icmpv6"]),
                    "%.3f" % row["other_rate"],
                    format_count(row["addrs"]),
                    format_count(row["excl_addrs"]),
                ]
                for row in rows
            ],
            title="Table 3: ICMPv6 Trial Results by Transformation (fdns seeds)",
        ),
    )

    by_level = {row["zn"]: row for row in rows}
    # Probes grow with the transformation level (z64 >> z40).
    assert by_level[64]["probes"] > by_level[40]["probes"]
    # So do discovered interfaces.
    assert by_level[64]["addrs"] > by_level[40]["addrs"]
    # z64 finds interfaces no coarser level finds.
    assert by_level[64]["excl_addrs"] > 0
    # Monotone probe growth across all levels.
    probes = [by_level[level]["probes"] for level in LEVELS]
    assert probes == sorted(probes)
