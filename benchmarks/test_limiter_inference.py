"""Extension — measuring a hop's ICMPv6 token bucket from outside.

Figure 5 observes that hops rate-limit with heterogeneous aggressiveness;
this bench quantifies each premise hop's bucket by active measurement
(burst read for capacity, steady-rate scan for refill) and validates the
estimates against the simulator's ground-truth parameters.
"""

from repro.analysis import render_table
from repro.analysis.limiter import LimiterProbeConfig, infer_limiter
from repro.netsim import Internet


def run_inference(world):
    net = Internet(world)
    vantage = world.vantages["US-EDU-2"]
    target = next(iter(world.truth.subnets.values())).prefix.base | 0x1234
    rows = []
    for hop_index, (router, _) in enumerate(vantage.premise_chain, start=1):
        estimate = infer_limiter(net, "US-EDU-2", target, ttl=hop_index)
        rows.append(
            (
                hop_index,
                router.limiter.rate,
                router.limiter.burst,
                estimate.rate,
                estimate.burst,
                estimate.probes_used,
            )
        )
    return rows


def test_limiter_inference(world, save_result, benchmark):
    rows = benchmark.pedantic(run_inference, args=(world,), rounds=1, iterations=1)
    save_result(
        "limiter_inference",
        render_table(
            ["Hop", "True rate", "True burst", "Est. rate", "Est. burst", "Probes"],
            [
                [
                    hop,
                    "%.0f/s" % true_rate,
                    "%.0f" % true_burst,
                    "%.0f/s" % est_rate,
                    "%.0f" % est_burst,
                    probes,
                ]
                for hop, true_rate, true_burst, est_rate, est_burst, probes in rows
            ],
            title="Extension: remote token-bucket inference (US-EDU-2 premise hops)",
        ),
    )

    for hop, true_rate, true_burst, est_rate, est_burst, _ in rows:
        scan_ceiling = max(LimiterProbeConfig().scan_rates)
        if true_rate <= scan_ceiling:
            # Within the scan range: estimates land near truth.
            assert abs(est_rate - true_rate) <= max(10, true_rate * 0.35), hop
        else:
            # Beyond it: the method reports the measured floor.
            assert est_rate == scan_ceiling, hop
        assert abs(est_burst - true_burst) <= max(10, true_burst * 0.35), hop
    # The aggressive hop 5 is measurably the stingiest.
    est_rates = {hop: est for hop, _, _, est, _, _ in rows}
    assert est_rates[5] == min(est_rates.values())
