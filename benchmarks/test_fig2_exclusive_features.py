"""Figure 2 — Features contributed by each target set.

For the z64 target sets: the fraction of targets / routed targets / BGP
prefixes / ASNs contributed by each, with the inset view isolating
prefixes and ASNs exclusive to a single set (most are shared by two or
more sets — the main panel obscures that, hence the paper's inset).
"""

from repro.analysis import format_count, render_table
from repro.analysis.targetsets import characterize_target_sets

Z64_SETS = (
    "caida-z64",
    "dnsdb-z64",
    "fiebig-z64",
    "fdns_any-z64",
    "cdn-k256-z64",
    "cdn-k32-z64",
    "6gen-z64",
)


def build(world, suite):
    sets = {name: suite[name] for name in Z64_SETS}
    return characterize_target_sets(sets, world.truth.bgp, list(Z64_SETS))


def test_fig2(world, suite, save_result, benchmark):
    features = benchmark.pedantic(build, args=(world, suite), rounds=1, iterations=1)
    rows = []
    for name in Z64_SETS:
        summary = features[name]
        rows.append(
            [
                name,
                format_count(summary.unique_targets),
                format_count(summary.routed_targets),
                format_count(len(summary.bgp_prefixes)),
                format_count(len(summary.asns)),
                format_count(len(summary.exclusive_prefixes)),
                format_count(len(summary.exclusive_asns)),
            ]
        )
    shared_prefixes = set()
    owners = {}
    for name in Z64_SETS:
        for prefix in features[name].bgp_prefixes:
            owners.setdefault(prefix, set()).add(name)
    shared_prefixes = {p for p, who in owners.items() if len(who) > 1}
    rows.append(
        ["(shared by 2+)", "", "", format_count(len(shared_prefixes)), "", "", ""]
    )
    save_result(
        "fig2_exclusive_features",
        render_table(
            ["Set", "Targets", "Routed", "BGP Pfx", "ASNs", "Excl Pfx", "Excl ASNs"],
            rows,
            title="Figure 2: Features contributed by each z64 target set",
        ),
    )

    # The paper's reading: target-set size does not correlate with BGP
    # breadth — CAIDA is tiny in targets yet tops prefix coverage.
    caida = features["caida-z64"]
    assert all(
        len(caida.bgp_prefixes) >= len(features[name].bgp_prefixes)
        for name in Z64_SETS
    )
    assert any(
        features[name].unique_targets > caida.unique_targets * 5
        for name in Z64_SETS
    )
    # Most prefixes are shared by two or more sets (the inset's raison
    # d'être).
    exclusive_total = sum(len(features[name].exclusive_prefixes) for name in Z64_SETS)
    assert len(shared_prefixes) > exclusive_total
