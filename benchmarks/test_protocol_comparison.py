"""Section 4.2 — probe transport comparison (ICMPv6 vs UDP vs TCP).

Identical campaigns (same permutation key, same targets, gentle 20 pps
rate to sidestep rate limiting) over the CAIDA-derived targets with each
transport.  The paper: ICMPv6 discovers a couple of percent more
interfaces than UDP/TCP (fewer paths filter it) and elicits more
non-Time-Exceeded responses (it penetrates deeper); this drives the
choice of ICMPv6 for all campaigns.
"""

from repro.analysis import protocol_comparison, render_table
from repro.hitlist import make_targets
from repro.netsim import Internet
from repro.prober import run_yarrp6

PROTOCOLS = ("icmp6", "udp", "tcp")


def run_trials(world, seeds):
    targets = make_targets("fdns_any", seeds["fdns_any"].items, 64, "fixediid")
    results = {}
    for protocol in PROTOCOLS:
        internet = Internet(world)
        results[protocol] = run_yarrp6(
            internet,
            "US-EDU-1",
            targets.addresses,
            pps=1000,
            max_ttl=16,
            protocol=protocol,
            key=0x59415252,  # same permutation for all three
        )
    return results


def test_protocol_comparison(world, seeds, save_result, benchmark):
    results = benchmark.pedantic(run_trials, args=(world, seeds), rounds=1, iterations=1)
    comparison = protocol_comparison(results)
    save_result(
        "protocol_comparison",
        render_table(
            ["Protocol", "Interfaces", "Responses", "Other ICMPv6", "Other/probe"],
            [
                [
                    protocol,
                    int(comparison[protocol]["interfaces"]),
                    int(comparison[protocol]["responses"]),
                    int(comparison[protocol]["other_icmpv6"]),
                    "%.4f" % comparison[protocol]["other_rate"],
                ]
                for protocol in PROTOCOLS
            ],
            title="Section 4.2: probe protocol comparison (fdns z64 targets)",
        ),
    )

    interfaces = {p: comparison[p]["interfaces"] for p in PROTOCOLS}
    # ICMPv6 discovers the most interfaces (UDP/TCP filtered in a
    # minority of destination networks).
    assert interfaces["icmp6"] >= interfaces["udp"]
    assert interfaces["icmp6"] >= interfaces["tcp"]
    # The advantage is a few percent, not an order of magnitude.
    assert interfaces["icmp6"] < interfaces["udp"] * 1.3
    assert interfaces["icmp6"] < interfaces["tcp"] * 1.3
