"""Table 6 — Fill Mode Trial Results.

Yarrp6 campaigns over the CAIDA target list with maximum TTLs 4/8/16/32
(fill mode on below 32, extending to a hop ceiling of 32): probes, fill
probes, interface addresses, and yield (addresses per probe).  The
paper's findings: a too-small max TTL strands discovery when a silent
hop breaks the fill chain (their hop five; our US-EDU-2's hop 5 is
near-dark at campaign rates); max TTL 16 maximizes yield; 32 wastes
probes past the path tails.
"""

from repro.analysis import format_count, render_table
from repro.hitlist import make_targets
from repro.netsim import Internet
from repro.prober import run_yarrp6

MAX_TTLS = (4, 8, 16, 32)
CEILING = 32


def run_trials(world, seeds):
    targets = make_targets("caida", seeds["caida"].items, 64, "fixediid")
    results = {}
    for max_ttl in MAX_TTLS:
        internet = Internet(world)
        results[max_ttl] = run_yarrp6(
            internet,
            "US-EDU-2",
            targets.addresses,
            pps=1000,
            max_ttl=max_ttl,
            fill=max_ttl < CEILING,
            fill_ceiling=CEILING,
        )
    return results


def test_table6(world, seeds, save_result, benchmark):
    results = benchmark.pedantic(run_trials, args=(world, seeds), rounds=1, iterations=1)
    rows = []
    for max_ttl in MAX_TTLS:
        result = results[max_ttl]
        rows.append(
            [
                max_ttl,
                format_count(result.sent),
                format_count(result.summary["fills"]),
                format_count(len(result.interfaces)),
                "%.2f%%" % (100 * result.yield_per_probe),
            ]
        )
    save_result(
        "table6_fill_mode",
        render_table(
            ["MaxTTL", "Probes", "Fills", "Int Addrs", "Yield"],
            rows,
            title="Table 6: Fill Mode Trial Results (CAIDA targets, US-EDU-2)",
        ),
    )

    yields = {ttl: results[ttl].yield_per_probe for ttl in MAX_TTLS}
    addrs = {ttl: len(results[ttl].interfaces) for ttl in MAX_TTLS}
    # maxTTL=4 is crippled: its fill chains die at the near-dark hop 5
    # (the paper's "hop five did not respond" effect).
    assert addrs[4] < addrs[16] * 0.5
    # Fill chains did fire below the ceiling, then died at silent hops.
    assert results[4].summary["fills"] > 0
    assert results[8].summary["fills"] > 0
    # maxTTL=32 has zero fills (pure sweep) and more probes than 16 with
    # no additional yield.
    assert results[32].summary["fills"] == 0
    assert results[32].sent > results[16].sent
    assert yields[16] > yields[32]
    # 16 is the sweet spot overall (the paper's chosen setting).
    assert yields[16] == max(yields.values())
