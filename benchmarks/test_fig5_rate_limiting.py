"""Figure 5 — Probing strategy, rate, and per-hop responsiveness.

Runs randomized (Yarrp6) and sequential (scamper-style) campaigns over
the CAIDA-style target list at 20 / 1000 / 2000 pps from two vantages
and reports the fraction of traces answered at each hop.  The paper's
headline: the strategies tie at 20 pps, but at 1–2 kpps sequential
probing collapses at the near hops (ICMPv6 token buckets drain under its
per-TTL waves) while randomization keeps responsiveness high; some hops
(US-EDU-2's hop 5) rate-limit aggressively regardless.
"""

import random

from repro.analysis import per_hop_responsiveness, render_table
from repro.hitlist import zn, fixediid
from repro.netsim import Internet
from repro.obs import MetricsRegistry, series_points
from repro.prober import run_sequential, run_yarrp6

from .emit import emit_json

RATES = (20.0, 1000.0, 2000.0)
VANTAGES = ("US-EDU-1", "US-EDU-2")
MAX_TTL = 16


def series_total(dump, name):
    return sum(value for _, value in series_points(dump, name))


def fig5_targets(world, seeds):
    """CAIDA-style list, Ark-fashion: the ::1-equivalent fixed-IID target
    plus several random /64s per advertised prefix (enough traces for the
    per-TTL waves to outlast the token buckets)."""
    rng = random.Random(5)
    prefixes = zn(seeds["caida"].items, 48)
    targets = list(fixediid(prefixes))
    for prefix in prefixes:
        for _ in range(8):
            targets.append(prefix.random_subnet(64, rng).base | 0x1234)
    return sorted(set(targets))


def run_all(world, seeds):
    targets = fig5_targets(world, seeds)
    series = {}
    telemetry = {}
    for vantage in VANTAGES:
        for rate in RATES:
            internet = Internet(world)
            yarrp = run_yarrp6(
                internet, vantage, targets, pps=rate, max_ttl=MAX_TTL,
                metrics=MetricsRegistry(),
            )
            seq = run_sequential(
                internet, vantage, targets, pps=rate, max_ttl=MAX_TTL,
                metrics=MetricsRegistry(),
            )
            series[(vantage, "yarrp", rate)] = per_hop_responsiveness(yarrp, MAX_TTL)
            series[(vantage, "sequential", rate)] = per_hop_responsiveness(seq, MAX_TTL)
            telemetry[(vantage, "yarrp", rate)] = yarrp.metrics
            telemetry[(vantage, "sequential", rate)] = seq.metrics
    return targets, series, telemetry


def test_fig5(world, seeds, save_result, benchmark):
    targets, series, telemetry = benchmark.pedantic(
        run_all, args=(world, seeds), rounds=1, iterations=1
    )
    for vantage in VANTAGES:
        headers = ["hop"] + [
            "%s@%d" % (strategy[:4], rate)
            for rate in RATES
            for strategy in ("sequential", "yarrp")
        ]
        rows = []
        for hop in range(1, MAX_TTL + 1):
            row = [hop]
            for rate in RATES:
                for strategy in ("sequential", "yarrp"):
                    fraction = dict(series[(vantage, strategy, rate)])[hop]
                    row.append("%.2f" % fraction)
            rows.append(row)
        save_result(
            "fig5_rate_limiting_%s" % vantage.lower(),
            render_table(
                headers,
                rows,
                title="Figure 5: per-hop responsiveness, %s (%d traces)"
                % (vantage, len(targets)),
            ),
        )

    def hop1(vantage, strategy, rate):
        return dict(series[(vantage, strategy, rate)])[1]

    for vantage in VANTAGES:
        # At 20 pps the strategies are near-identical at the first hop.
        assert abs(hop1(vantage, "yarrp", 20) - hop1(vantage, "sequential", 20)) < 0.1
        # At 1k and 2k pps Yarrp6 stays high...
        assert hop1(vantage, "yarrp", 1000) > 0.9
        assert hop1(vantage, "yarrp", 2000) > 0.9
        # ...while sequential collapses (paper: <20% at 1k, <10% at 2k).
        assert hop1(vantage, "sequential", 1000) < 0.5
        assert hop1(vantage, "sequential", 2000) < 0.3
        # And 2k pps hurts sequential more than 1k pps.
        assert hop1(vantage, "sequential", 2000) <= hop1(vantage, "sequential", 1000)
    # US-EDU-2's aggressive hop 5 dips even for Yarrp6 at speed.
    eddy = dict(series[("US-EDU-2", "yarrp", 2000.0)])
    assert eddy[5] < 0.5 < eddy[6]

    # The telemetry tells the same rate-limiting story from the router
    # side: sequential probing at speed trips far more token-bucket
    # denials than the trickle run, and the prober's sent counter agrees
    # with the campaign's virtual-time series.
    for vantage in VANTAGES:
        for strategy in ("yarrp", "sequential"):
            for rate in RATES:
                dump = telemetry[(vantage, strategy, rate)]
                assert dump["prober.sent"]["value"] == series_total(
                    dump, "campaign.sent"
                )
        slow = telemetry[(vantage, "sequential", 20.0)]
        fast = telemetry[(vantage, "sequential", 2000.0)]
        assert series_total(fast, "ratelimit.denied") > series_total(
            slow, "ratelimit.denied"
        )

    emit_json(
        "fig5_rate_limiting",
        {
            "benchmark": "fig5_rate_limiting",
            "targets": len(targets),
            "max_ttl": MAX_TTL,
            "campaigns": {
                "%s/%s@%g" % (vantage, strategy, rate): {
                    "hop1_responsiveness": dict(
                        series[(vantage, strategy, rate)]
                    )[1],
                    "sent": telemetry[(vantage, strategy, rate)][
                        "prober.sent"
                    ]["value"],
                    "ratelimit_denied": series_total(
                        telemetry[(vantage, strategy, rate)],
                        "ratelimit.denied",
                    ),
                    "metrics": telemetry[(vantage, strategy, rate)],
                }
                for vantage in VANTAGES
                for strategy in ("yarrp", "sequential")
                for rate in RATES
            },
        },
    )
