"""Section 7.2 (future work) — what do additional vantages buy?

The paper plans to "leverage our methodology across a large number of
vantages".  Using the Table 7 grid, this bench quantifies the plan on
the bench world: per-vantage discovery, pairwise overlap, and the
greedy max-coverage marginal-gain curve.  Expected shape: vantages
overlap heavily on core topology (every path crosses the backbone) yet
each contributes some exclusive periphery — diminishing but nonzero
returns.
"""

from repro.analysis import render_table
from repro.analysis.vantages import best_order, interfaces_by_vantage, overlap_matrix
from benchmarks.conftest import GRID_SETS, VANTAGES


def build(campaigns):
    results = [
        campaigns.get(vantage, set_name)
        for vantage in VANTAGES
        for set_name in GRID_SETS
        if set_name.endswith("z64")
    ]
    return interfaces_by_vantage(results)


def test_vantage_gain(campaigns, save_result, benchmark):
    grouped = benchmark.pedantic(build, args=(campaigns,), rounds=1, iterations=1)
    order = best_order(grouped)
    matrix = overlap_matrix(grouped)
    rows = [[name, fresh, cumulative] for name, fresh, cumulative in order]
    overlap_rows = [
        ["%s ~ %s" % pair, "%.2f" % value] for pair, value in sorted(matrix.items())
    ]
    save_result(
        "vantage_gain",
        render_table(
            ["Vantage (greedy order)", "New interfaces", "Cumulative"],
            rows,
            title="Section 7.2: marginal gain of additional vantages (z64 suite)",
        )
        + "\n\n"
        + render_table(["Pair", "Jaccard"], overlap_rows, title="Pairwise overlap"),
    )

    # Vantages overlap heavily (same core) ...
    assert all(value > 0.5 for value in matrix.values())
    # ... but every additional vantage still contributes something.
    assert all(fresh > 0 for _, fresh, _ in order[1:])
    # Diminishing returns: later additions contribute less than the first.
    assert order[0][1] > order[-1][1]
