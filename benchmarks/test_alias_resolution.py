"""Section 7.2 (future work) — alias resolution and router-level graphs.

The paper ends where CAIDA's ITDK pipeline begins: feed the discovered
interface addresses into speedtrap-style alias resolution and collapse
the interface-level topology into a router-level graph.  This benchmark
runs the complete pipeline on a campaign's discoveries and grades it
against the simulator's ground truth:

* pairwise precision/recall of the resolved alias clusters;
* interface-graph vs router-graph sizes (the collapse factor);
* edge accuracy of the interface graph against true path adjacency.
"""

from repro.analysis import (
    build_traces,
    graph_summary,
    interface_graph,
    render_table,
    resolve_aliases,
    router_graph,
    score_against_truth,
    truth_clusters_for,
)
from repro.analysis.graph import edge_accuracy
from repro.netsim import Internet
from repro.prober import run_speedtrap


def run_pipeline(world, campaigns):
    # Interfaces discovered by the tum-z64 campaign from EU-NET.
    campaign = campaigns.get("EU-NET", "tum-z64")
    traces = build_traces(campaign.records)
    candidates = sorted(campaign.interfaces)

    internet = Internet(world)
    internet.reset_dynamics()
    machine = run_speedtrap(internet, "EU-NET", candidates)
    clusters = resolve_aliases(machine.samples)
    truth = truth_clusters_for(candidates, world.truth.router_addresses)
    accuracy = score_against_truth(clusters, truth)

    interfaces = interface_graph(traces, registry=world.truth.registry)
    routers = router_graph(interfaces, clusters)

    # Ground-truth adjacency: consecutive hops of the compiled paths
    # toward every traced target, across all ECMP variants.
    vantage = internet.vantage("EU-NET")
    truth_adjacent = set()
    for target in traces:
        for variant in range(4):
            compiled = internet.path_for(vantage, target, variant)
            hops = [iface for _, iface, _ in compiled.hops]
            for a, b in zip(hops, hops[1:]):
                truth_adjacent.add((min(a, b), max(a, b)))
    accuracy_edges, checked = edge_accuracy(interfaces, truth_adjacent)
    return machine, clusters, accuracy, interfaces, routers, (accuracy_edges, checked)


def test_alias_resolution(world, campaigns, save_result, benchmark):
    machine, clusters, accuracy, interfaces, routers, edges = benchmark.pedantic(
        run_pipeline, args=(world, campaigns), rounds=1, iterations=1
    )
    interface_stats = graph_summary(interfaces)
    router_stats = graph_summary(routers)
    multi = [cluster for cluster in clusters if len(cluster) > 1]
    rows = [
        ["speedtrap probes", machine.sent],
        ["sampled addresses", len(machine.samples)],
        ["alias clusters (multi-interface)", len(multi)],
        ["pairwise precision", "%.3f" % accuracy.precision],
        ["pairwise recall", "%.3f" % accuracy.recall],
        ["interface graph nodes/edges", "%d / %d" % (interface_stats["nodes"], interface_stats["edges"])],
        ["router graph nodes/edges", "%d / %d" % (router_stats["nodes"], router_stats["edges"])],
        ["interface edge accuracy", "%.3f over %d" % edges],
    ]
    save_result(
        "alias_resolution",
        render_table(
            ["Metric", "Value"],
            rows,
            title="Section 7.2: alias resolution -> router-level topology (tum-z64, EU-NET)",
        ),
    )

    # The resolution must be near-perfect against ground truth.
    assert accuracy.precision > 0.95
    assert accuracy.recall > 0.7
    # Aliases exist and collapse the graph.
    assert multi
    assert router_stats["nodes"] < interface_stats["nodes"]
    # Interface-level edges reflect true forwarding adjacency.
    assert edges[0] > 0.95
