"""Table 2 — TUM Seed Subsets.

Regenerates the TUM collection's per-file inventory and the total/unique
accounting (the real collection's union is far smaller than the sum of
its parts because the subsets overlap heavily).
"""

from repro.analysis import format_count, render_table
from repro.seeds import tum_seed, tum_subsets


def build_rows(world):
    subsets = tum_subsets(world)
    union = tum_seed(world)
    rows = [
        [name, format_count(len(values))]
        for name, values in sorted(subsets.items())
    ]
    total = sum(len(values) for values in subsets.values())
    rows.append(["Total", format_count(total)])
    rows.append(["Total Unique", format_count(len(union))])
    return rows, subsets, union


def test_table2(world, save_result, benchmark):
    rows, subsets, union = benchmark.pedantic(
        build_rows, args=(world,), rounds=1, iterations=1
    )
    save_result(
        "table2_tum_subsets",
        render_table(["Subset", "# Addresses"], rows, title="Table 2: TUM Seed Subsets"),
    )
    # Subsets overlap: the union is strictly smaller than the sum.
    total = sum(len(values) for values in subsets.values())
    assert len(union) < total
    # The traceroute subset exists and contributes router addresses.
    assert len(subsets["traceroute"]) > 0
    assert {"rapid7-dnsany", "ct", "caida-dnsnames", "openipmap"} <= set(subsets)
