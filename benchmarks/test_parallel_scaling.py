"""Parallel runner scaling — wall-clock for 1/2/4 worker processes.

Runs one decoupled-dynamics campaign through ``run_parallel`` at shard
counts 1, 2 and 4, with a real worker pool sized to the shard count, and
records wall-clock, speedup over the single-shard run, and virtual
probes-per-second per core (how many simulated emissions one worker
retires per wall-second — the per-core figure is what the columnar loop
optimizes, independent of how many cores the host happens to have).
The merge is verified against the single-process reference each time, so
the numbers measure the *correct* parallel path, not a diverging
shortcut.

Each run also carries a :class:`repro.obs.WallProfiler`, so the payload
records a per-phase wall-clock breakdown (world build, pool startup,
shard execution, IPC wait, result pickling, merge) per shard count, and
the per-shard result-pickle byte count at the widest pool is a tracked
regression number alongside the wall-clock figures.

Speedup is asserted only when the machine actually has the cores: on the
1-2 core containers CI uses, 4 workers time-slice one core and the run
degenerates to serial-plus-overhead, which is not a regression.  Core
availability is read from the scheduler affinity mask (what this process
may actually use — cgroup-limited CI containers often advertise a large
``os.cpu_count`` while pinning the process to one or two cores).

``REPRO_SMOKE=1`` shrinks the campaign to a few hundred probes and skips
the timing assertions — the CI smoke mode that just proves the pool path
imports, forks, runs and merges.
"""

import os

from repro.netsim import InternetConfig, build_internet, decoupled_dynamics
from repro.obs import Stopwatch, WallProfiler, dump_to_json
from repro.prober import CampaignSpec, run_parallel, run_single

from .emit import emit_json, tracked_entry

SMOKE = os.environ.get("REPRO_SMOKE") == "1"

WORLD = decoupled_dynamics(
    InternetConfig(
        n_edge=24 if SMOKE else 120,
        n_tier2=4,
        cpe_customers_per_isp=40 if SMOKE else 600,
        seed=2018,
    )
)
N_TARGETS = 60 if SMOKE else 1500
PPS = 10_000.0
SHARD_COUNTS = (1, 2, 4)
MIN_SPEEDUP_4W = 1.5


def host_cores() -> int:
    """Cores this process may actually run on.

    ``os.sched_getaffinity`` reflects cgroup/affinity limits (CI
    containers routinely pin to fewer cores than the machine has);
    ``os.cpu_count`` is the fallback where affinity is unsupported.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


def record_key(record):
    return (record.target, record.ttl, record.hop, record.rtt_us, record.received_at)


def test_parallel_scaling(save_result):
    built = build_internet(WORLD)
    targets = tuple(
        subnet.prefix.base | 1 for subnet in built.truth.subnets.values()
    )[:N_TARGETS]
    spec = CampaignSpec(
        internet=WORLD, vantage="EU-NET", targets=targets, pps=PPS, metrics=True
    )

    reference = run_single(spec)

    cores = host_cores()
    rows = []
    wall = {}
    pps_per_core = {}
    dumps = {}
    profiles = {}
    for shards in SHARD_COUNTS:
        profiler = WallProfiler()
        watch = Stopwatch()
        merged = run_parallel(
            spec, shards=shards, processes=shards, profiler=profiler
        )
        wall[shards] = watch.elapsed_seconds()
        profiler.validate()
        profiles[shards] = profiler.to_profile_dict()

        assert merged.sent == reference.sent
        assert [record_key(r) for r in merged.records] == [
            record_key(r) for r in reference.records
        ]
        assert merged.interfaces == reference.interfaces
        assert merged.curve == reference.curve
        dumps[shards] = merged.metrics
        # Virtual emissions retired per wall-second, per worker: the
        # per-core throughput of the campaign inner loop.
        pps_per_core[shards] = merged.sent / wall[shards] / shards
        rows.append(
            "%d worker%s  %7.2fs   speedup %.2fx   %9.0f virtual pps/core"
            "   %7d pickle B"
            % (
                shards,
                "s" if shards > 1 else " ",
                wall[shards],
                wall[1] / wall[shards],
                pps_per_core[shards],
                profiles[shards].get("pickle_bytes_total", 0),
            )
        )

    # The merged telemetry is part of the determinism contract: every
    # shard count dumps byte-identical metrics.
    baseline = dump_to_json(dumps[SHARD_COUNTS[0]])
    for shards in SHARD_COUNTS[1:]:
        assert dump_to_json(dumps[shards]) == baseline

    save_result(
        "parallel_scaling",
        "Parallel runner scaling: %d targets x %d TTLs, %s, pps=%d\n"
        "host cores: %d%s\n\n%s"
        % (
            len(targets),
            16,
            "smoke mode" if SMOKE else "full campaign",
            int(PPS),
            cores,
            " (smoke: timing assertions skipped)" if SMOKE else "",
            "\n".join(rows),
        ),
    )
    # Wall-clock and derived throughput are tracked for regression
    # against the previous run's artifact (see benchmarks.emit CLI); the
    # speedup entries are additionally asserted below when the host has
    # the cores to make them meaningful.
    tracked = {
        "virtual_pps_per_core_1w": tracked_entry(
            pps_per_core[1], direction="higher"
        ),
        "wall_seconds_1w": tracked_entry(wall[1], direction="lower"),
    }
    # Result-pickle traffic per shard at the widest pool: the IPC cost
    # the counting pickler measures.  Growth here means fatter shard
    # results crossing the pipe — a merge-pressure regression the wall
    # clock alone can hide behind core count.
    pickle_total = profiles[SHARD_COUNTS[-1]].get("pickle_bytes_total", 0)
    if pickle_total:
        tracked["pickle_bytes_per_shard"] = tracked_entry(
            pickle_total / SHARD_COUNTS[-1], direction="lower"
        )
    if cores >= 4 and not SMOKE:
        tracked["speedup_4w"] = tracked_entry(
            wall[1] / wall[4], direction="higher", threshold=0.15
        )
    emit_json(
        "parallel_scaling",
        {
            "benchmark": "parallel_scaling",
            "smoke": SMOKE,
            "targets": len(targets),
            "pps": PPS,
            "host_cores": cores,
            "sent": reference.sent,
            "interfaces": len(reference.interfaces),
            "wall_seconds": {str(shards): wall[shards] for shards in SHARD_COUNTS},
            "speedup": {
                str(shards): wall[SHARD_COUNTS[0]] / wall[shards]
                for shards in SHARD_COUNTS
            },
            "virtual_pps_per_core": {
                str(shards): pps_per_core[shards] for shards in SHARD_COUNTS
            },
            # Per-phase wall-clock attribution for every shard count:
            # world build/rewind, pool startup, shard execution, IPC
            # wait, result pickling (with per-shard byte counts), merge.
            "wallclock_profile": {
                str(shards): profiles[shards] for shards in SHARD_COUNTS
            },
            "tracked": tracked,
            "metrics": dumps[SHARD_COUNTS[-1]],
        },
    )

    if not SMOKE and cores >= 4:
        assert wall[1] / wall[4] >= MIN_SPEEDUP_4W, (
            "expected >= %.1fx speedup at 4 workers on a %d-core host, got %.2fx"
            % (MIN_SPEEDUP_4W, cores, wall[1] / wall[4])
        )
