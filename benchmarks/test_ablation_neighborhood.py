"""Ablation — Yarrp's neighborhood enhancement (Section 4.2).

The paper describes (as planned experimentation) a mode where Yarrp
keeps per-TTL state over the local responsive neighborhood: once a TTL
stops producing *new* interfaces for a window, probes at that TTL are
skipped.  Near-vantage hops are few and discovered instantly, so the
savings concentrate exactly where probes are most redundant.

This bench measures the probe savings and the discovery cost across a
range of neighborhood TTL limits.
"""

from repro.analysis import render_table
from repro.netsim import Internet
from repro.prober import run_yarrp6

LIMITS = (None, 2, 4, 6)


def run_trials(world, suite):
    targets = suite["tum-z64"].addresses
    out = {}
    for limit in LIMITS:
        internet = Internet(world)
        kwargs = {"max_ttl": 16}
        if limit is not None:
            kwargs.update(
                neighborhood_ttl=limit, neighborhood_window_us=1_000_000
            )
        out[limit] = run_yarrp6(internet, "EU-NET", targets, pps=2000, **kwargs)
    return out


def test_ablation_neighborhood(world, suite, save_result, benchmark):
    out = benchmark.pedantic(run_trials, args=(world, suite), rounds=1, iterations=1)
    rows = []
    for limit in LIMITS:
        result = out[limit]
        rows.append(
            [
                "off" if limit is None else "<=%d" % limit,
                result.sent,
                result.summary.get("skipped", 0),
                len(result.interfaces),
            ]
        )
    save_result(
        "ablation_neighborhood",
        render_table(
            ["Neighborhood TTL", "Probes", "Skipped", "Interfaces"],
            rows,
            title="Ablation: Yarrp6 neighborhood mode (tum-z64, EU-NET, 2 kpps)",
        ),
    )

    baseline = out[None]
    # Each wider neighborhood skips more probes.
    skipped = [out[limit].summary.get("skipped", 0) for limit in LIMITS[1:]]
    assert skipped == sorted(skipped)
    assert skipped[0] > 0
    for limit in LIMITS[1:]:
        result = out[limit]
        assert result.sent < baseline.sent
        # Discovery cost stays small: near hops are few.
        assert len(result.interfaces) >= len(baseline.interfaces) * 0.9
