"""Table 1 — Seed List Properties.

Regenerates the seed inventory: per source, the collection method, item
count, and the IID-class mix (randomized / low-byte / EUI-64) of its
address-valued entries.  The CDN rows are prefix-only (the kIP aggregates
hide client addresses), exactly as in the paper.
"""

from repro.addrs import IIDClass
from repro.analysis import format_count, render_table
from repro.seeds import join

ORDER = (
    "caida",
    "dnsdb",
    "fiebig",
    "fdns_any",
    "cdn-k256",
    "cdn-k32",
    "6gen",
    "tum",
    "random",
)


def build_rows(seeds):
    rows = []
    for name in ORDER:
        seed_list = seeds[name]
        addresses = seed_list.addresses
        profile = seed_list.iid_profile()
        total = max(1, len(addresses))
        if addresses:
            mix = "rand=%4.1f%% low=%4.1f%% eui=%4.1f%%" % (
                100 * profile[IIDClass.RANDOMIZED] / total,
                100 * profile[IIDClass.LOWBYTE] / total,
                100 * profile[IIDClass.EUI64] / total,
            )
        else:
            mix = "prefix seeds (client addrs withheld)"
        rows.append(
            [
                name,
                seed_list.method,
                format_count(len(seed_list)),
                format_count(len(addresses)),
                mix,
            ]
        )
    combined = join("combined", [seeds[name] for name in ORDER[:7]])
    rows.append(
        [
            "combined",
            combined.method,
            format_count(len(combined)),
            format_count(len(combined.addresses)),
            "",
        ]
    )
    return rows


def test_table1(seeds, save_result, benchmark):
    rows = benchmark.pedantic(build_rows, args=(seeds,), rounds=1, iterations=1)
    save_result(
        "table1_seed_properties",
        render_table(
            ["Name", "Method", "Items", "Addrs", "IIDs"],
            rows,
            title="Table 1: Seed List Properties",
        ),
    )

    by_name = {row[0]: row for row in rows}
    # Shape assertions mirroring the paper's Table 1:
    # CDN seeds are anonymized prefixes, no addresses.
    assert by_name["cdn-k32"][4].startswith("prefix seeds")
    # 6Gen output is overwhelmingly unstructured ("randomized") IIDs.
    sixgen = seeds["6gen"].iid_profile()
    assert sixgen[IIDClass.RANDOMIZED] > sum(sixgen.values()) * 0.6
    # Fiebig (rDNS) is lowbyte-heavy relative to FDNS.
    fiebig = seeds["fiebig"].iid_profile()
    assert fiebig[IIDClass.LOWBYTE] > fiebig[IIDClass.EUI64]
    # The random control has essentially no structured IIDs.
    random_profile = seeds["random"].iid_profile()
    assert random_profile[IIDClass.RANDOMIZED] > sum(random_profile.values()) * 0.95
