"""Figure 6 — Selected result features of the Yarrp6 campaigns.

The result-side companion to Figure 2: per z64 campaign, the share of
traces, discovered interfaces, interface-covering BGP prefixes and ASNs,
with the inset isolating the prefixes/ASNs each campaign discovered
exclusively (most are shared by two or more campaigns).
"""

from repro.analysis import format_count, render_table
from repro.analysis.targetsets import characterize_results
from benchmarks.conftest import VANTAGES

Z64_SETS = (
    "caida-z64",
    "dnsdb-z64",
    "fiebig-z64",
    "fdns_any-z64",
    "tum-z64",
    "cdn-k256-z64",
    "cdn-k32-z64",
    "6gen-z64",
)


def build(world, campaigns):
    merged = {}
    for set_name in Z64_SETS:
        results = [campaigns.get(vantage, set_name) for vantage in VANTAGES]
        merged[set_name] = _merge(results)
    features = characterize_results(merged, world.truth.registry)
    return merged, features


def _merge(results):
    from repro.prober.campaign import CampaignResult

    interfaces = set()
    records = []
    sent = 0
    for result in results:
        interfaces |= result.interfaces
        records.extend(result.records)
        sent += result.sent
    return CampaignResult(
        name="merged",
        vantage="ALL",
        prober="yarrp6",
        pps=1000,
        targets=sum(result.targets for result in results),
        sent=sent,
        records=records,
        interfaces=interfaces,
        curve=[],
        response_labels={},
        summary={},
        duration_us=0,
    )


def test_fig6(world, campaigns, save_result, benchmark):
    merged, features = benchmark.pedantic(
        build, args=(world, campaigns), rounds=1, iterations=1
    )
    rows = []
    for set_name in Z64_SETS:
        summary = features[set_name]
        rows.append(
            [
                set_name,
                format_count(merged[set_name].sent),
                format_count(len(summary.interfaces)),
                format_count(len(summary.exclusive_interfaces)),
                format_count(len(summary.bgp_prefixes)),
                format_count(len(summary.exclusive_prefixes)),
                format_count(len(summary.asns)),
                format_count(len(summary.exclusive_asns)),
            ]
        )
    save_result(
        "fig6_result_features",
        render_table(
            ["Campaign", "Traces", "IntAddrs", "Excl Int", "Pfx", "Excl Pfx", "ASNs", "Excl ASNs"],
            rows,
            title="Figure 6: result features of z64 Yarrp6 campaigns",
        ),
    )

    # cdn-k32 and tum contribute the two largest exclusive-interface
    # shares (Section 5.1).
    exclusive = {
        name: len(features[name].exclusive_interfaces) for name in Z64_SETS
    }
    top_two = sorted(exclusive, key=exclusive.get, reverse=True)[:2]
    assert set(top_two) == {"cdn-k32-z64", "tum-z64"}
    # Interface ASN coverage is mostly shared across campaigns: exclusive
    # ASNs are a small minority for every set.
    for name in Z64_SETS:
        assert len(features[name].exclusive_asns) <= max(
            5, 0.3 * len(features[name].asns)
        ), name
