"""Shared benchmark world and campaign cache.

Every benchmark regenerates one table or figure of the paper against the
same deterministic "bench world" — a scaled-down internet whose knobs are
documented in DESIGN.md.  Campaign results are cached per (vantage,
target set), since Table 7, Figures 6/7 and the subnet experiments all
read the same 54-campaign grid.

Rendered tables/series are written to ``benchmarks/results/*.txt`` and
echoed to stdout, so both the pytest log and the tree keep the output.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.hitlist import build_suite
from repro.netsim import Internet, InternetConfig, build_internet
from repro.prober import CampaignResult, run_yarrp6
from repro.seeds import build_all_seeds

#: The bench world.  Scaling notes (DESIGN.md §2): the paper's hitlists
#: run to tens of millions against ~50k BGP prefixes; this world keeps the
#: same proportions at roughly 1/1000 scale.  The cdn kIP parameters are
#: scaled with client-population density, preserving the paper's 8x ratio
#: between the k32 and k256 variants.
BENCH_CONFIG = InternetConfig(
    n_edge=200,
    cpe_customers_per_isp=10_000,
    leaves_per_alloc=(1, 2),
    hosts_per_leaf=(1, 3),
    seed=2018,
)

CAMPAIGN_PPS = 1000.0  # the paper's campaign rate (Section 4.3)
MAX_TTL = 16           # the paper's tuned maximum TTL (Table 6)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: The 18-campaign grid of Table 7 (9 sources x 2 zn levels).
GRID_SETS = tuple(
    "%s-z%d" % (source, level)
    for source in (
        "caida",
        "dnsdb",
        "fiebig",
        "fdns_any",
        "cdn-k256",
        "cdn-k32",
        "6gen",
        "tum",
        "random",
    )
    for level in (48, 64)
)

VANTAGES = ("EU-NET", "US-EDU-1", "US-EDU-2")


@pytest.fixture(scope="session")
def world():
    return build_internet(BENCH_CONFIG)


@pytest.fixture(scope="session")
def seeds(world):
    return build_all_seeds(
        world, random_count=6000, sixgen_budget=12_000, cdn_k32=2, cdn_k256=16
    )


@pytest.fixture(scope="session")
def suite(seeds):
    return build_suite(
        {name: seed_list.items for name, seed_list in seeds.items()},
        levels=(48, 64),
    )


class CampaignCache:
    """Lazily runs and memoizes grid campaigns."""

    def __init__(self, world, suite):
        self.world = world
        self.suite = suite
        self._results: Dict[Tuple[str, str], CampaignResult] = {}

    def get(self, vantage: str, set_name: str) -> CampaignResult:
        key = (vantage, set_name)
        if key not in self._results:
            internet = Internet(self.world)
            targets = self.suite[set_name].addresses
            self._results[key] = run_yarrp6(
                internet,
                vantage,
                targets,
                pps=CAMPAIGN_PPS,
                max_ttl=MAX_TTL,
                fill=True,
                name="%s/%s" % (vantage, set_name),
            )
        return self._results[key]

    def grid(self, vantages=VANTAGES, sets=GRID_SETS):
        return {
            (vantage, set_name): self.get(vantage, set_name)
            for vantage in vantages
            for set_name in sets
        }


@pytest.fixture(scope="session")
def campaigns(world, suite):
    return CampaignCache(world, suite)


@pytest.fixture(scope="session")
def save_result():
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, name + ".txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print("\n" + text)

    return _save
