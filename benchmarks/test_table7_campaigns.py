"""Table 7 — Aggregate Yarrp6 campaign results.

The full grid: every target set (9 sources x z48/z64) probed from all
three vantages at 1 kpps with fill mode, reverse-sorted by interface
yield.  Columns follow the paper: traces, targets, interface addresses,
exclusive interfaces, BGP prefixes / ASNs reached (with exclusives),
reach-target fraction, path-length percentiles, EUI-64 interface counts
and their path-offset summary.  Per-vantage aggregate rows reproduce the
vantage comparison (US-EDU-2's depressed yield, Section 5.3).
"""

from collections import defaultdict

from repro.analysis import (
    build_traces,
    eui64_interfaces,
    eui64_path_offsets,
    eui64_share,
    format_count,
    offset_summary,
    oui_concentration,
    path_length_stats,
    reach_fraction,
    render_table,
)
from repro.analysis.targetsets import characterize_results
from benchmarks.conftest import GRID_SETS, VANTAGES


def aggregate_rows(world, suite, campaigns):
    grid = campaigns.grid()
    # Per-set aggregation across vantages.
    per_set = {}
    for set_name in GRID_SETS:
        results = [grid[(vantage, set_name)] for vantage in VANTAGES]
        interfaces = set()
        records = []
        traces = 0
        sent = 0
        for result in results:
            interfaces |= result.interfaces
            records.extend(result.records)
            traces += result.traces
            sent += result.sent
        per_set[set_name] = {
            "interfaces": interfaces,
            "records": records,
            "traces": traces,
            "sent": sent,
            "targets": len(suite[set_name]),
        }
    return grid, per_set


def test_table7(world, suite, campaigns, save_result, benchmark):
    grid, per_set = benchmark.pedantic(
        aggregate_rows, args=(world, suite, campaigns), rounds=1, iterations=1
    )
    features = characterize_results(
        {name: _as_result(stats) for name, stats in per_set.items()},
        world.truth.registry,
    )

    rows = []
    union_interfaces = set()
    for set_name in sorted(
        per_set, key=lambda name: len(per_set[name]["interfaces"]), reverse=True
    ):
        stats = per_set[set_name]
        union_interfaces |= stats["interfaces"]
        traces = build_traces(stats["records"])
        median, _, p95 = path_length_stats(traces.values())
        eui = eui64_interfaces(stats["interfaces"])
        # Offsets are per-vantage: merging vantages with different path
        # lengths into one trace would skew positions.
        offsets = []
        for vantage in VANTAGES:
            offsets.extend(eui64_path_offsets(grid[(vantage, set_name)]))
        p5_off, median_off = offset_summary(offsets)
        summary = features[set_name]
        rows.append(
            [
                set_name,
                format_count(stats["sent"]),
                format_count(stats["targets"]),
                format_count(len(stats["interfaces"])),
                format_count(len(summary.exclusive_interfaces)),
                format_count(len(summary.bgp_prefixes)),
                format_count(len(summary.asns)),
                "%.0f%%" % (100 * reach_fraction(traces.values())),
                "%d (%d)" % (p95, median),
                "%s %.0f%%"
                % (format_count(len(eui)), 100 * eui64_share(stats["interfaces"])),
                "%d (%d)" % (p5_off, median_off),
            ]
        )

    # Per-vantage aggregate rows (the paper's top block).
    vantage_rows = []
    for vantage in VANTAGES:
        interfaces = set()
        records = []
        sent = 0
        traces_count = 0
        for set_name in GRID_SETS:
            result = grid[(vantage, set_name)]
            interfaces |= result.interfaces
            records.extend(result.records)
            sent += result.sent
            traces_count += result.traces
        traces = build_traces(records)
        median, _, p95 = path_length_stats(traces.values())
        vantage_rows.append(
            [
                vantage,
                format_count(sent),
                format_count(traces_count),
                format_count(len(interfaces)),
                "%.0f%%" % (100 * reach_fraction(traces.values())),
                "%d (%d)" % (p95, median),
                "%.0f%%" % (100 * eui64_share(interfaces)),
            ]
        )

    save_result(
        "table7_campaigns",
        render_table(
            [
                "Campaign",
                "Probes",
                "Targets",
                "IntAddrs",
                "Excl",
                "BGP Pfx",
                "ASNs",
                "Reach",
                "PathLen p95(med)",
                "EUI-64",
                "Off p5(med)",
            ],
            rows,
            title="Table 7: aggregate Yarrp6 campaigns (3 vantages, fill mode)",
        )
        + "\n\n"
        + render_table(
            ["Vantage", "Probes", "Traces", "IntAddrs", "Reach", "PathLen", "EUI-64"],
            vantage_rows,
            title="Per-vantage aggregates",
        ),
    )

    interfaces_of = {name: len(stats["interfaces"]) for name, stats in per_set.items()}
    # cdn-k32-z64 and tum-z64 are the top two discoverers, in that order.
    ranked = sorted(interfaces_of, key=interfaces_of.get, reverse=True)
    assert set(ranked[:2]) == {"cdn-k32-z64", "tum-z64"}
    assert interfaces_of["cdn-k32-z64"] >= interfaces_of["tum-z64"]
    # They are complementary: each has substantial exclusive discoveries.
    assert len(features["cdn-k32-z64"].exclusive_interfaces) > 0.3 * interfaces_of["cdn-k32-z64"]
    assert len(features["tum-z64"].exclusive_interfaces) > 0.2 * interfaces_of["tum-z64"]
    # ...revealing different CPE fleets: their EUI-64 discoveries come
    # from different manufacturers/ISPs (minimal overlap).
    cdn_eui = set(eui64_interfaces(per_set["cdn-k32-z64"]["interfaces"]))
    tum_eui = set(eui64_interfaces(per_set["tum-z64"]["interfaces"]))
    if cdn_eui and tum_eui:
        overlap = len(cdn_eui & tum_eui) / min(len(cdn_eui), len(tum_eui))
        assert overlap < 0.2
    # EUI-64 interfaces overall are a large share, concentrated in two
    # OUIs, and sit at the ends of paths.
    assert eui64_share(union_interfaces) > 0.25
    assert oui_concentration(union_interfaces, top=2) > 0.9
    # caida has breadth (many ASNs) but low absolute discovery.
    assert len(features["caida-z64"].asns) > 0.7 * len(features["tum-z64"].asns)
    assert interfaces_of["caida-z64"] < interfaces_of["cdn-k32-z64"] / 3
    # US-EDU-2 yields fewer interfaces than the other vantages (its long,
    # aggressively rate-limited premise path).
    per_vantage = {row[0]: row for row in vantage_rows}
    as_int = lambda text: float(text.rstrip("Mk")) * (
        1_000_000 if text.endswith("M") else 1_000 if text.endswith("k") else 1
    )
    assert as_int(per_vantage["US-EDU-2"][3]) <= as_int(per_vantage["EU-NET"][3])
    assert as_int(per_vantage["US-EDU-2"][3]) <= as_int(per_vantage["US-EDU-1"][3])


def _as_result(stats):
    """Adapt an aggregated stats dict to the CampaignResult surface the
    analysis helpers need."""
    from repro.prober.campaign import CampaignResult

    return CampaignResult(
        name="agg",
        vantage="ALL",
        prober="yarrp6",
        pps=1000,
        targets=stats["targets"],
        sent=stats["sent"],
        records=stats["records"],
        interfaces=set(stats["interfaces"]),
        curve=[],
        response_labels={},
        summary={},
        duration_us=0,
        traces=stats["traces"],
    )
