"""Extension — racing target *generators*: 6Gen vs Entropy/IP-lite.

The paper evaluates 6Gen [46] as its generative seed; Entropy/IP [24]
(same research lineage, cited in §2) is the other published generator.
Both get the same observational input — the CAIDA-style probing results
— and the same campaign budget; the scoreboard is interface discovery
per probe against the random-control baseline.
"""

import random

from repro.analysis import render_table
from repro.hitlist import lowbyte1, zn
from repro.hitlist.entropy import EntropyModel
from repro.netsim import Internet
from repro.netsim.topology import RouterRole
from repro.prober import run_yarrp6

BUDGET = 6000


def run_trials(world, suite, campaigns):
    rng = random.Random(64)
    # Shared observational input: CAIDA targets + discovered interfaces.
    caida_targets = lowbyte1(zn([p for p, _ in world.truth.bgp.items() if p.length <= 48], 64))
    discovered = [
        addr
        for addr, router in world.truth.router_addresses.items()
        if router.role is not RouterRole.CPE and rng.random() < 0.3
    ]
    observations = sorted(set(caida_targets + discovered))

    model = EntropyModel(observations)
    entropy_targets = model.generate(BUDGET, seed=64, exclude=observations)

    results = {}
    net = Internet(world)
    results["entropy-ip"] = run_yarrp6(
        net, "EU-NET", entropy_targets, pps=1000, max_ttl=16
    )
    sixgen = campaigns.get("EU-NET", "6gen-z64")
    rand = campaigns.get("EU-NET", "random-z64")
    results["6gen-z64"] = sixgen
    results["random-z64"] = rand
    return results


def test_generator_comparison(world, suite, campaigns, save_result, benchmark):
    results = benchmark.pedantic(
        run_trials, args=(world, suite, campaigns), rounds=1, iterations=1
    )
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.targets,
                result.sent,
                len(result.interfaces),
                "%.2f%%" % (100 * result.yield_per_probe),
            ]
        )
    save_result(
        "generator_comparison",
        render_table(
            ["Generator", "Targets", "Probes", "Interfaces", "Yield"],
            rows,
            title="Extension: generative target lists vs the random control (EU-NET)",
        ),
    )

    yields = {name: result.yield_per_probe for name, result in results.items()}
    # Both generators beat unguided random sampling per probe.
    assert yields["entropy-ip"] > yields["random-z64"]
    assert yields["6gen-z64"] > yields["random-z64"]
    # And discover something nontrivial in absolute terms.
    assert len(results["entropy-ip"].interfaces) > 100
