"""Table 4 — ICMPv6 Trial Results by IID.

Three UDP trial campaigns: cdn-k256 z64 targets synthesized with (a)
lowbyte1 and (b) fixediid identifiers, plus (c) Fiebig targets at known
(seed) addresses.  Reports the distribution of ICMPv6 Time Exceeded and
Destination Unreachable responses.  The paper's shape: TE dominates
everywhere; lowbyte1 vs fixediid differ negligibly, but *known* addresses
draw a visible share of port-unreachable responses — evidence the probes
reach end hosts (which is why the paper settles on the fixed IID).
"""

from repro.analysis import TABLE4_ROWS, render_table
from repro.hitlist import make_targets, synthesize, zn
from repro.hitlist.pipeline import TargetSet
from repro.netsim import Internet
from repro.prober import run_yarrp6


def error_mix(result):
    """Distribution over TE + Destination Unreachable rows only."""
    errors = {
        label: count
        for label, count in result.response_labels.items()
        if label in TABLE4_ROWS
    }
    total = sum(errors.values())
    return {label: errors.get(label, 0) / total if total else 0.0 for label in TABLE4_ROWS}


def run_trials(world, seeds):
    results = {}
    for method in ("lowbyte1", "fixediid"):
        targets = make_targets("cdn-k256", seeds["cdn-k256"].items, 64, method)
        internet = Internet(world)
        results["cdn-k256 %s" % method] = run_yarrp6(
            internet,
            "US-EDU-1",
            targets.addresses,
            pps=1000,
            max_ttl=16,
            protocol="udp",
        )
    prefixes = zn(seeds["fiebig"].items, 64)
    known = synthesize(prefixes, "known", seeds["fiebig"].addresses)
    internet = Internet(world)
    results["fiebig known"] = run_yarrp6(
        internet, "US-EDU-1", known, pps=1000, max_ttl=16, protocol="udp"
    )
    return results


def test_table4(world, seeds, save_result, benchmark):
    results = benchmark.pedantic(run_trials, args=(world, seeds), rounds=1, iterations=1)
    mixes = {name: error_mix(result) for name, result in results.items()}
    columns = list(results)
    save_result(
        "table4_iid_trials",
        render_table(
            ["type/code"] + columns,
            [
                [label] + ["%.1f%%" % (100 * mixes[column][label]) for column in columns]
                for label in TABLE4_ROWS
            ],
            title="Table 4: ICMPv6 Trial Results by IID (UDP probes)",
        ),
    )

    # Time exceeded dominates in every trial (paper: ~96-98%).
    for name, mix in mixes.items():
        assert mix["time exceeded"] > 0.75, name
    # lowbyte1 vs fixediid: negligible difference in TE share (<5 points).
    delta = abs(
        mixes["cdn-k256 lowbyte1"]["time exceeded"]
        - mixes["cdn-k256 fixediid"]["time exceeded"]
    )
    assert delta < 0.05
    # Known-address probing reaches end hosts: its port-unreachable share
    # exceeds the fixediid trial's.
    assert (
        mixes["fiebig known"]["port unreachable"]
        > mixes["cdn-k256 fixediid"]["port unreachable"]
    )
    # lowbyte1 can hit gateway self-addresses: port unreachable appears at
    # least as often as with the fixed pseudo-random IID.
    assert (
        mixes["cdn-k256 lowbyte1"]["port unreachable"]
        >= mixes["cdn-k256 fixediid"]["port unreachable"]
    )
