"""Figure 8 — Subnets inferred by path divergence.

Runs discoverByPathDiv (with the paper's conservative parameters and the
registry/equivalent-ASN augmentation) over each z64 campaign's traces and
over all campaigns combined: (a) the CDF of inferred minimum subnet
prefix lengths per target set; (b) counts per length, plus the IA-hack
/64 confirmations plotted at 64.  The paper's reading: a set's inference
power is governed by its targets' DPLs (Figure 3a), so the clustered
sets (fiebig) reach /64 granularity while BGP-guided sets stop shallow.
"""

from repro.analysis import (
    AsnResolver,
    build_traces,
    discover_by_path_div,
    render_cdf,
    render_table,
)
from benchmarks.conftest import VANTAGES

Z64_SETS = (
    "caida-z64",
    "cdn-k256-z64",
    "cdn-k32-z64",
    "dnsdb-z64",
    "fdns_any-z64",
    "fiebig-z64",
    "6gen-z64",
    "tum-z64",
)

BINS = list(range(24, 65, 4))


def infer_all(world, campaigns):
    resolver = AsnResolver(world.truth.registry, world.truth.equivalent_asns)
    candidates = {}
    combined_records = []
    for set_name in Z64_SETS:
        records = []
        for vantage in VANTAGES:
            records.extend(campaigns.get(vantage, set_name).records)
        combined_records.extend(records)
        traces = build_traces(records)
        candidates[set_name] = discover_by_path_div(traces, resolver)
    candidates["combined"] = discover_by_path_div(
        build_traces(combined_records), resolver
    )
    return candidates


def test_fig8(world, campaigns, save_result, benchmark):
    candidates = benchmark.pedantic(
        infer_all, args=(world, campaigns), rounds=1, iterations=1
    )
    cdfs = {
        name: result.length_cdf(BINS)
        for name, result in candidates.items()
        if result.candidate_prefixes
    }
    save_result(
        "fig8a_subnet_cdf",
        "Figure 8a: inferred minimum subnet prefix length (CDF)\n"
        + render_cdf(cdfs, "len"),
    )
    rows = []
    for name, result in candidates.items():
        histogram = result.length_histogram()
        rows.append(
            [
                name,
                len(result.candidate_prefixes),
                sum(count for length, count in histogram.items() if length >= 56),
                len(result.ia_subnets),
                result.same64_last_hop,
            ]
        )
    save_result(
        "fig8b_subnet_counts",
        render_table(
            ["Set", "Candidates", ">=56", "IA /64s", "last-hop-in-/64"],
            rows,
            title="Figure 8b: inferred subnet counts per set (+ IA hack)",
        ),
    )

    combined = candidates["combined"]
    assert combined.candidate_prefixes, "no subnets inferred at all"
    # The IA hack confirms /64s (the dots at 64 in the paper's plot).
    assert combined.same64_last_hop > 0
    assert combined.ia_subnets

    # Inference power follows target clustering: fiebig (deep DPLs)
    # reaches finer subnets than caida (shallow DPLs).
    def finest(name):
        prefixes = candidates[name].candidate_prefixes
        return max((prefix.length for prefix in prefixes), default=0)

    assert finest("fiebig-z64") >= finest("caida-z64")
    # cdn-k32 infers subnets inside client space.
    assert candidates["cdn-k32-z64"].candidate_prefixes
    # The combined set has at least as many candidates as any single set.
    for name in Z64_SETS:
        assert len(combined.candidate_prefixes) >= len(
            candidates[name].candidate_prefixes
        ) * 0.9, name
