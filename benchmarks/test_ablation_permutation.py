"""Ablation — how much of Yarrp6's advantage is the permutation?

Design choice 3 in DESIGN.md: the cipher-based bijective shuffle of the
(target x TTL) space.  We compare, at a fixed rate and probe budget:

* full permutation (Yarrp6 proper);
* TTL-major order (all TTL=1 probes first — maximal per-hop bursts);
* target-major order (per-destination TTL sweeps, the classic
  traceroute emission order).

The permutation must dominate at speed; TTL-major is worst-case for the
near hops' buckets.
"""

import random

from repro.analysis import per_hop_responsiveness, render_table
from repro.hitlist import fixediid, zn
from repro.netsim import Internet
from repro.prober import run_yarrp6
from repro.prober.campaign import run_campaign
from repro.prober.yarrp6 import Yarrp6, Yarrp6Config

MAX_TTL = 16
RATE = 2000.0


class _OrderedYarrp(Yarrp6):
    """Yarrp6 with the permutation replaced by a fixed emission order."""

    def __init__(self, source, targets, config, order):
        super().__init__(source, targets, config)
        if order == "ttl-major":
            pairs = [
                (index, ttl)
                for ttl in range(config.min_ttl, config.max_ttl + 1)
                for index in range(len(targets))
            ]
        else:  # target-major
            pairs = [
                (index, ttl)
                for index in range(len(targets))
                for ttl in range(config.min_ttl, config.max_ttl + 1)
            ]
        self._pairs = pairs

    def next_probe(self, now):
        if self._cursor >= len(self._pairs):
            return None
        index, ttl = self._pairs[self._cursor]
        self._cursor += 1
        return self._encode(self.targets[index], ttl, now)

    @property
    def exhausted(self):
        return self._cursor >= len(self._pairs)


def fig_targets(world, seeds):
    rng = random.Random(5)
    prefixes = zn(seeds["caida"].items, 48)
    targets = list(fixediid(prefixes))
    for prefix in prefixes:
        for _ in range(8):
            targets.append(prefix.random_subnet(64, rng).base | 0x1234)
    return sorted(set(targets))


def run_trials(world, seeds):
    targets = fig_targets(world, seeds)
    config = Yarrp6Config(max_ttl=MAX_TTL)
    out = {}
    internet = Internet(world)
    out["permuted"] = run_yarrp6(
        internet, "US-EDU-1", targets, pps=RATE, max_ttl=MAX_TTL
    )
    for order in ("ttl-major", "target-major"):
        internet.reset_dynamics()
        from repro.netsim.engine import Engine, pps_interval

        engine = Engine()
        machine = _OrderedYarrp(
            internet.vantage("US-EDU-1").address, targets, config, order
        )
        interval = pps_interval(RATE)

        def tick():
            packet = machine.next_probe(engine.now)
            if packet is None:
                return
            response = internet.probe(packet, engine.now)
            if response is not None:
                data = response.data
                engine.schedule(
                    response.delay_us, lambda data=data: machine.receive(data, engine.now)
                )
            engine.schedule(interval, tick)

        engine.schedule(0, tick)
        engine.run()
        from repro.prober.campaign import CampaignResult

        out[order] = CampaignResult(
            name=order,
            vantage="US-EDU-1",
            prober="yarrp6-" + order,
            pps=RATE,
            targets=len(targets),
            sent=machine.sent,
            records=machine.processor.records,
            interfaces=set(machine.processor.interfaces),
            curve=list(machine.processor.curve),
            response_labels=dict(machine.processor.response_labels),
            summary=machine.summary(),
            duration_us=engine.now,
        )
    return targets, out


def test_ablation_permutation(world, seeds, save_result, benchmark):
    targets, out = benchmark.pedantic(
        run_trials, args=(world, seeds), rounds=1, iterations=1
    )
    rows = []
    for order, result in out.items():
        hop1 = dict(per_hop_responsiveness(result, MAX_TTL))[1]
        rows.append(
            [order, result.sent, len(result.interfaces), "%.2f" % hop1]
        )
    save_result(
        "ablation_permutation",
        render_table(
            ["Emission order", "Probes", "Interfaces", "Hop-1 resp."],
            rows,
            title="Ablation: probe-order randomization at %d pps" % int(RATE),
        ),
    )

    hop1 = {
        order: dict(per_hop_responsiveness(result, MAX_TTL))[1]
        for order, result in out.items()
    }
    # The permutation preserves first-hop responsiveness at speed.
    assert hop1["permuted"] > 0.9
    # TTL-major order is catastrophic for the near hops.
    assert hop1["ttl-major"] < 0.3
    # Target-major at a *fixed open-loop rate* also spreads per-hop load
    # (each hop sees rate/16) and effectively ties with the permutation —
    # the burstiness that kills real sequential tracers comes from their
    # reply-synchronized per-TTL waves, which the permutation removes
    # without needing per-destination state or timeouts.
    assert hop1["target-major"] > 0.9
    assert (
        len(out["permuted"].interfaces)
        >= len(out["target-major"].interfaces) * 0.98
    )
    # Unique-interface counts are nearly insensitive at this scale (one
    # response per router suffices even under bursts); what bursts destroy
    # is *per-trace completeness* — the substrate of path analysis and
    # subnet inference.
    from repro.analysis import build_traces

    def complete_fraction(result):
        traces = build_traces(result.records)
        return sum(1 for trace in traces.values() if trace.complete) / max(
            1, len(traces)
        )

    assert len(out["permuted"].records) > len(out["ttl-major"].records) * 1.2
    assert complete_fraction(out["permuted"]) > complete_fraction(out["ttl-major"])
