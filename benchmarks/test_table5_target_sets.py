"""Table 5 — Target Set Properties.

Characterizes every target set at z48 and z64: unique/exclusive targets,
routed targets, BGP prefixes, ASNs, and 6to4 counts.  The Combined row
unions the six independent sources; exclusivity is computed without the
derived collections (Combined, TUM) so constituents keep their credit,
exactly as the paper does.
"""

from repro.analysis import format_count, render_table
from repro.analysis.targetsets import characterize_target_sets
from repro.hitlist import combine

INDEPENDENT = ("caida", "dnsdb", "fiebig", "fdns_any", "cdn-k256", "cdn-k32", "6gen")


def build_table(world, suite):
    sets = dict(suite)
    combined = combine(
        "combined-z64", [suite["%s-z64" % name] for name in INDEPENDENT]
    )
    sets["combined-z64"] = combined
    exclusive_among = [
        "%s-z%d" % (name, level) for name in INDEPENDENT for level in (48, 64)
    ]
    features = characterize_target_sets(sets, world.truth.bgp, exclusive_among)
    return features


def test_table5(world, suite, save_result, benchmark):
    features = benchmark.pedantic(
        build_table, args=(world, suite), rounds=1, iterations=1
    )
    order = sorted(features)
    rows = []
    for name in order:
        summary = features[name].as_dict()
        rows.append(
            [
                name,
                format_count(summary["unique_targets"]),
                format_count(summary["exclusive_targets"]),
                format_count(summary["routed_targets"]),
                format_count(summary["bgp_prefixes"]),
                format_count(summary["exclusive_prefixes"]),
                format_count(summary["asns"]),
                format_count(summary["exclusive_asns"]),
                format_count(summary["sixtofour"]),
            ]
        )
    save_result(
        "table5_target_sets",
        render_table(
            ["Name", "Uniq", "Excl", "Routed", "BGP Pfx", "Excl Pfx", "ASNs", "Excl ASNs", "6to4"],
            rows,
            title="Table 5: Target Set Properties",
        ),
    )

    def f(name):
        return features[name]

    # z64 never has fewer targets than z48 for the same source.
    for name in INDEPENDENT:
        assert f("%s-z64" % name).unique_targets >= f("%s-z48" % name).unique_targets
    # CAIDA covers (nearly) every BGP prefix but carries few targets:
    # breadth without depth.
    caida = f("caida-z64")
    assert len(caida.bgp_prefixes) > 0.8 * len(world.truth.bgp.prefixes())
    # Fiebig is big but concentrated: far fewer ASNs than CAIDA reaches.
    assert len(f("fiebig-z64").asns) < len(caida.asns)
    # Fiebig has a significant unrouted share (registry-only infra).
    fiebig = f("fiebig-z64")
    assert fiebig.routed_targets < fiebig.unique_targets
    # FDNS carries the 6to4 noise; CAIDA doesn't.
    assert f("fdns_any-z64").sixtofour > 0
    assert caida.sixtofour <= 1  # 2002::/16's own ::1 at most
    # Most cdn-k32 targets are exclusive (nobody else sees client space).
    cdn = f("cdn-k32-z64")
    assert cdn.exclusive_targets > cdn.unique_targets * 0.5
    # The combined set dominates every constituent.
    combined = f("combined-z64")
    for name in INDEPENDENT:
        assert combined.unique_targets >= f("%s-z64" % name).unique_targets
