"""Extension — adaptive-rate probing (the paper's [3], Alvarez et al.).

When the operator can't know the path's rate-limiter provisioning, a
fixed high rate silently loses the near hops (Figure 5).  The AIMD
controller starts fast, detects the collapse, and converges to a
sustainable rate.  Compared here at an aggressive starting rate: fixed
vs adaptive, on near-hop completeness, discovery, and (virtual) time.
"""

from repro.analysis import render_table
from repro.netsim import Internet
from repro.prober import run_yarrp6
from repro.prober.adaptive import AdaptiveConfig, run_adaptive_yarrp6

START_PPS = 20_000.0


def run_trials(world, suite):
    targets = suite["caida-z64"].addresses * 1  # modest set, shared paths
    extra = suite["random-z64"].addresses[:1500]
    targets = sorted(set(targets) | set(extra))
    net = Internet(world)
    fixed = run_yarrp6(net, "US-EDU-1", targets, pps=START_PPS, max_ttl=16)
    net.reset_dynamics()
    adaptive, controller = run_adaptive_yarrp6(
        net,
        "US-EDU-1",
        targets,
        AdaptiveConfig(initial_pps=START_PPS, window_us=100_000),
    )
    return targets, fixed, adaptive, controller


def near_records(result):
    return sum(1 for record in result.records if record.ttl <= 3)


def test_adaptive_rate(world, suite, save_result, benchmark):
    targets, fixed, adaptive, controller = benchmark.pedantic(
        run_trials, args=(world, suite), rounds=1, iterations=1
    )
    rows = [
        [
            "fixed @%dk" % (START_PPS / 1000),
            fixed.sent,
            near_records(fixed),
            len(fixed.interfaces),
            "%.1fs" % (fixed.duration_us / 1e6),
        ],
        [
            "adaptive",
            adaptive.sent,
            near_records(adaptive),
            len(adaptive.interfaces),
            "%.1fs" % (adaptive.duration_us / 1e6),
        ],
    ]
    trajectory = ", ".join(
        "%.0f" % pps for _, pps, _ in controller.history[:12]
    )
    save_result(
        "adaptive_rate",
        render_table(
            ["Run", "Probes", "Near-hop records", "Interfaces", "Virtual time"],
            rows,
            title="Extension: AIMD rate control vs fixed overload rate",
        )
        + "\nrate trajectory (first windows): %s" % trajectory,
    )

    # The controller backed off from the unsustainable start.
    assert controller.history
    assert controller.history[-1][1] < START_PPS
    # Near-hop completeness recovers substantially.
    assert near_records(adaptive) > near_records(fixed) * 1.3
    # Discovery is at least on par.
    assert len(adaptive.interfaces) >= len(fixed.interfaces) * 0.95
    # The cost is time, not probes.
    assert adaptive.duration_us > fixed.duration_us
    assert adaptive.sent == fixed.sent
