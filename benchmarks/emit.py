"""Machine-readable benchmark artifacts: ``BENCH_<name>.json``.

Benchmarks have always written human-oriented tables to
``benchmarks/results/*.txt``; this helper writes a JSON twin per
benchmark — headline numbers plus the runs' full metric dumps — so CI
can upload them as artifacts and successive runs can be diffed
longitudinally.  Wall-clock figures in a payload must come from
:mod:`repro.obs.wallclock` (the one allowlisted host-time boundary) and
sit beside, never inside, the deterministic telemetry sections.

**Regression tracking.**  A payload may carry a ``tracked`` section —
``{"name": {"value": <float>, "direction": "higher"|"lower", ...}}`` —
naming the numbers whose drift between runs constitutes a performance
regression.  ``python -m benchmarks.emit CURRENT.json --baseline
BASELINE.json`` compares the two sections and exits nonzero when any
tracked number moved past its threshold in the losing direction; CI
runs this against the artifact of the previous run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Default allowed fractional drift for a tracked value; individual
#: entries override with their own ``threshold`` key.  Wall-clock numbers
#: on shared CI runners are noisy — thresholds are deliberately loose and
#: exist to catch step changes, not jitter.
DEFAULT_THRESHOLD = 0.25


def emit_json(name: str, payload: Dict[str, Any]) -> str:
    """Write ``BENCH_<name>.json`` under ``benchmarks/results``.

    The payload is serialized canonically (sorted keys, stable
    separators) so deterministic sections diff cleanly between runs.
    Returns the path written.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_%s.json" % name)
    with open(path, "w") as sink:
        json.dump(payload, sink, sort_keys=True, separators=(",", ": "), indent=1)
        sink.write("\n")
    return path


def tracked_entry(
    value: float, direction: str = "higher", threshold: Optional[float] = None
) -> Dict[str, Any]:
    """One ``tracked`` section entry.

    ``direction`` is the GOOD direction: ``"higher"`` means larger values
    are better (speedups, throughput) and a drop is a regression;
    ``"lower"`` means smaller is better (wall time) and growth is a
    regression.
    """
    if direction not in ("higher", "lower"):
        raise ValueError("direction must be 'higher' or 'lower': %r" % direction)
    entry: Dict[str, Any] = {"value": float(value), "direction": direction}
    if threshold is not None:
        if threshold < 0:
            raise ValueError("negative threshold: %r" % threshold)
        entry["threshold"] = float(threshold)
    return entry


def compare_tracked(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Regressions of ``current`` against ``baseline``; empty means pass.

    Every entry in the baseline's ``tracked`` section must exist in the
    current payload and must not have moved past its threshold in the
    losing direction.  Improvements and new tracked names never fail.
    A per-entry ``threshold`` (taken from the current entry, falling back
    to the baseline's) overrides the global one.
    """
    failures: List[str] = []
    base_section = baseline.get("tracked", {})
    cur_section = current.get("tracked", {})
    for name in sorted(base_section):
        base_entry = base_section[name]
        cur_entry = cur_section.get(name)
        if cur_entry is None:
            failures.append("%s: tracked in baseline but missing from current" % name)
            continue
        base_value = float(base_entry["value"])
        cur_value = float(cur_entry["value"])
        direction = base_entry.get("direction", "higher")
        allowed = float(
            cur_entry.get("threshold", base_entry.get("threshold", threshold))
        )
        if direction == "higher":
            floor = base_value * (1.0 - allowed)
            if cur_value < floor:
                failures.append(
                    "%s: %.4g fell below %.4g (baseline %.4g, -%d%% allowed)"
                    % (name, cur_value, floor, base_value, round(allowed * 100))
                )
        else:
            ceiling = base_value * (1.0 + allowed)
            if cur_value > ceiling:
                failures.append(
                    "%s: %.4g rose above %.4g (baseline %.4g, +%d%% allowed)"
                    % (name, cur_value, ceiling, base_value, round(allowed * 100))
                )
    return failures


def _load(path: str) -> Dict[str, Any]:
    with open(path) as source:
        payload = json.load(source)
    if not isinstance(payload, dict):
        raise ValueError("%s: expected a JSON object payload" % path)
    return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m benchmarks.emit CURRENT.json --baseline BASELINE.json``.

    Exit status: 0 when every tracked number is within threshold (or the
    baseline tracks nothing), 1 on regression, 2 on unreadable input.
    """
    parser = argparse.ArgumentParser(
        prog="benchmarks.emit",
        description="Compare a BENCH_*.json artifact against a baseline run.",
    )
    parser.add_argument("current", help="BENCH_*.json from the current run")
    parser.add_argument(
        "--baseline",
        required=True,
        help="BENCH_*.json from the reference run to compare against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional drift for entries without their own "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")
    try:
        current = _load(args.current)
        baseline = _load(args.baseline)
    except (OSError, ValueError) as error:
        print("emit: %s" % error, file=sys.stderr)
        return 2
    failures = compare_tracked(current, baseline, threshold=args.threshold)
    if failures:
        print("REGRESSION (%d tracked number(s)):" % len(failures))
        for line in failures:
            print("  " + line)
        return 1
    tracked = len(baseline.get("tracked", {}))
    print("ok: %d tracked number(s) within threshold" % tracked)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
