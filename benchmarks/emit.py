"""Machine-readable benchmark artifacts: ``BENCH_<name>.json``.

Benchmarks have always written human-oriented tables to
``benchmarks/results/*.txt``; this helper writes a JSON twin per
benchmark — headline numbers plus the runs' full metric dumps — so CI
can upload them as artifacts and successive runs can be diffed
longitudinally.  Wall-clock figures in a payload must come from
:mod:`repro.obs.wallclock` (the one allowlisted host-time boundary) and
sit beside, never inside, the deterministic telemetry sections.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_json(name: str, payload: Dict[str, Any]) -> str:
    """Write ``BENCH_<name>.json`` under ``benchmarks/results``.

    The payload is serialized canonically (sorted keys, stable
    separators) so deterministic sections diff cleanly between runs.
    Returns the path written.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_%s.json" % name)
    with open(path, "w") as sink:
        json.dump(payload, sink, sort_keys=True, separators=(",", ": "), indent=1)
        sink.write("\n")
    return path
